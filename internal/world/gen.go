package world

import (
	"fmt"
	"math/rand"
)

// Config sizes the generated world. The zero value is not useful; call
// DefaultConfig and adjust.
type Config struct {
	Seed int64

	People       int
	Cities       int
	Countries    int
	Continents   int
	Lakes        int
	Mountains    int
	Rivers       int
	Companies    int
	Universities int
	Works        int
	Awards       int
	Fields       int
	Languages    int

	// PopulationRevisions is how many historical values each population
	// fact carries (the paper's time-varying triples; the verifier must
	// pick the last).
	PopulationRevisions int
}

// DefaultConfig returns a laptop-scale world big enough for the paper's
// evaluation sizes (SimpleQuestions subset, QALD-scale multi-hop set, 50
// open-ended questions) with headroom.
func DefaultConfig() Config {
	return Config{
		Seed:                42,
		People:              600,
		Cities:              160,
		Countries:           40,
		Continents:          6,
		Lakes:               60,
		Mountains:           30,
		Rivers:              60,
		Companies:           120,
		Universities:        60,
		Works:               400,
		Awards:              40,
		Fields:              30,
		Languages:           24,
		PopulationRevisions: 3,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.People <= 0, c.Cities <= 0, c.Countries <= 0, c.Continents <= 0:
		return fmt.Errorf("world: people/cities/countries/continents must be positive")
	case c.Lakes < 0, c.Mountains < 0, c.Rivers < 0, c.Companies < 0,
		c.Universities < 0, c.Works < 0, c.Awards < 0, c.Fields <= 0, c.Languages <= 0:
		return fmt.Errorf("world: negative entity count")
	case c.PopulationRevisions < 1:
		return fmt.Errorf("world: PopulationRevisions must be >= 1")
	case c.Works < c.People/2:
		return fmt.Errorf("world: need at least one work per two people (got %d works, %d people)", c.Works, c.People)
	case c.Cities < c.Countries:
		return fmt.Errorf("world: every country needs a city (got %d cities, %d countries)", c.Cities, c.Countries)
	}
	return nil
}

// Generate builds a world deterministically from the config.
func Generate(cfg Config) (*World, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	nm := newNamer(rng)
	w := &World{}

	addEntity := func(k Kind, name string) int {
		id := len(w.Entities)
		w.Entities = append(w.Entities, Entity{ID: id, Kind: k, Name: name})
		return id
	}
	addFact := func(subject int, rel RelKey, object int, literal string, ord int) {
		w.Facts = append(w.Facts, Fact{
			ID: len(w.Facts), Subject: subject, Rel: rel,
			Object: object, Literal: literal, Ord: ord,
		})
	}
	entityFact := func(subject int, rel RelKey, object int) {
		addFact(subject, rel, object, "", 0)
	}
	literalFact := func(subject int, rel RelKey, lit string) {
		addFact(subject, rel, -1, lit, 0)
	}

	// --- Entity pools (order matters for determinism) ---
	continents := make([]int, cfg.Continents)
	for i := range continents {
		continents[i] = addEntity(KindContinent, nm.Continent(i))
	}
	languages := make([]int, cfg.Languages)
	for i := range languages {
		languages[i] = addEntity(KindLanguage, nm.Language(i))
	}
	fields := make([]int, cfg.Fields)
	for i := range fields {
		fields[i] = addEntity(KindField, nm.Field(i))
	}
	countries := make([]int, cfg.Countries)
	for i := range countries {
		countries[i] = addEntity(KindCountry, nm.Country())
	}
	cities := make([]int, cfg.Cities)
	for i := range cities {
		cities[i] = addEntity(KindCity, nm.City())
	}
	universities := make([]int, cfg.Universities)
	for i := range universities {
		universities[i] = addEntity(KindUniversity, nm.University())
	}
	awards := make([]int, cfg.Awards)
	for i := range awards {
		awards[i] = addEntity(KindAward, nm.Award())
	}
	people := make([]int, cfg.People)
	for i := range people {
		people[i] = addEntity(KindPerson, nm.Person())
	}
	works := make([]int, cfg.Works)
	for i := range works {
		works[i] = addEntity(KindWork, nm.Work())
	}
	companies := make([]int, cfg.Companies)
	for i := range companies {
		companies[i] = addEntity(KindCompany, nm.Company())
	}
	lakes := make([]int, cfg.Lakes)
	for i := range lakes {
		lakes[i] = addEntity(KindLake, nm.Lake())
	}
	mountains := make([]int, cfg.Mountains)
	for i := range mountains {
		mountains[i] = addEntity(KindMountain, nm.Mountain())
	}
	rivers := make([]int, cfg.Rivers)
	for i := range rivers {
		rivers[i] = addEntity(KindRiver, nm.River())
	}

	pick := func(pool []int) int { return pool[rng.Intn(len(pool))] }

	// --- Geography ---
	cityCountry := make(map[int]int, len(cities))
	for i, city := range cities {
		// Round-robin base assignment guarantees every country has cities.
		country := countries[i%len(countries)]
		cityCountry[city] = country
		entityFact(city, RelInCountry, country)
		pop := int64(50_000 + rng.Intn(20_000_000))
		for rev := 0; rev < cfg.PopulationRevisions; rev++ {
			addFact(city, RelPopulation, -1, fmt.Sprintf("%d", pop), rev)
			pop += int64(10_000 + rng.Intn(500_000))
		}
	}
	countryCities := make(map[int][]int)
	for _, city := range cities {
		countryCities[cityCountry[city]] = append(countryCities[cityCountry[city]], city)
	}
	for i, country := range countries {
		entityFact(country, RelCapital, countryCities[country][0])
		entityFact(country, RelContinent, continents[i%len(continents)])
		entityFact(country, RelOfficialLang, languages[i%len(languages)])
	}
	for _, lake := range lakes {
		literalFact(lake, RelArea, fmt.Sprintf("%d", 500+rng.Intn(90_000)))
		entityFact(lake, RelLocatedIn, pick(countries))
		for k := 0; k < 1+rng.Intn(3); k++ {
			entityFact(lake, RelInflow, pick(rivers))
		}
	}
	for _, m := range mountains {
		covered := 2 + rng.Intn(6)
		seen := map[int]bool{}
		for k := 0; k < covered; k++ {
			c := pick(countries)
			if seen[c] {
				continue
			}
			seen[c] = true
			entityFact(m, RelCovers, c)
		}
		literalFact(m, RelElevation, fmt.Sprintf("%d", 1800+rng.Intn(7000)))
	}
	for _, r := range rivers {
		basin := 1 + rng.Intn(4)
		seen := map[int]bool{}
		for k := 0; k < basin; k++ {
			c := pick(countries)
			if seen[c] {
				continue
			}
			seen[c] = true
			entityFact(r, RelFlowsThrough, c)
		}
		literalFact(r, RelLength, fmt.Sprintf("%d", 80+rng.Intn(6000)))
	}

	// --- Academia & awards ---
	for _, u := range universities {
		entityFact(u, RelUnivIn, pick(cities))
		literalFact(u, RelInception, fmt.Sprintf("%d", 1200+rng.Intn(800)))
	}
	for i, a := range awards {
		entityFact(a, RelAwardFor, fields[i%len(fields)])
	}

	// --- People ---
	// Birthplaces correlate with prominence: famous people cluster in
	// famous cities. This keeps multi-hop chains anchored at head entities
	// inside head territory, which is why QALD-style questions are kinder
	// to parametric recall than uniform SimpleQuestions samples.
	personField := make(map[int]int, len(people))
	for i, p := range people {
		rankFrac := float64(i) / float64(len(people))
		cityCap := 1 + int(rankFrac*float64(len(cities)-1))
		city := cities[rng.Intn(cityCap)]
		entityFact(p, RelBornIn, city)
		entityFact(p, RelCitizenOf, cityCountry[city])
		literalFact(p, RelBirthDate, fmt.Sprintf("%04d-%02d-%02d",
			1850+rng.Intn(150), 1+rng.Intn(12), 1+rng.Intn(28)))
		f := fields[i%len(fields)]
		personField[p] = f
		entityFact(p, RelFieldOfWork, f)
		entityFact(p, RelOccupation, f)
		entityFact(p, RelEducatedAt, pick(universities))
		// Award probability tied to field-aligned awards: notable people
		// in a field tend to win that field's award.
		if rng.Intn(100) < 45 {
			entityFact(p, RelAward, awards[(i%len(fields))%len(awards)])
			if rng.Intn(100) < 25 {
				entityFact(p, RelAward, pick(awards))
			}
		}
	}

	// --- Works (each created by a person, genre = creator's field) ---
	for i, wk := range works {
		creator := people[i%len(people)]
		entityFact(wk, RelCreator, creator)
		entityFact(creator, RelNotableWork, wk)
		entityFact(wk, RelGenre, personField[creator])
		literalFact(wk, RelPubYear, fmt.Sprintf("%d", 1900+rng.Intn(124)))
	}

	// --- Companies ---
	for i, c := range companies {
		entityFact(c, RelFoundedBy, people[(i*7)%len(people)])
		entityFact(c, RelHeadquarters, pick(cities))
		entityFact(c, RelIndustry, fields[i%len(fields)])
		for k := 0; k < 1+rng.Intn(3); k++ {
			entityFact(c, RelProduct, pick(works))
		}
	}

	w.index()
	return w, nil
}

// MustGenerate is Generate but panics on config error; convenient in tests
// and examples where the config is a literal.
func MustGenerate(cfg Config) *World {
	w, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return w
}
