package world

import (
	"fmt"
	"strings"

	"repro/internal/kg"
)

// Schema maps canonical relations onto a KG source's surface forms. The two
// concrete schemas deliberately differ in style — Wikidata uses verbose
// English property labels, Freebase uses slash-delimited type paths — so
// that cross-source experiments exercise real schema mismatch, as in the
// paper's Table III.
type Schema struct {
	Source kg.Source
	// relLabel maps canonical relation key to this schema's relation text.
	relLabel map[RelKey]string
	// entityCase transforms entity surface forms (Freebase lower-cases).
	entityCase func(string) string
	// dropRels lists relations with partial coverage in this schema, and
	// dropRate the per-fact probability of omission. This models the
	// paper's Table III observation that "some relations that are
	// single-hop in Freebase require multi-hop reasoning in Wikidata",
	// i.e. the same fact is not directly available in both sources.
	dropRels map[RelKey]bool
	dropRate float64
}

// wikidataLabels follows Wikidata property naming conventions.
var wikidataLabels = map[RelKey]string{
	RelBornIn:       "place of birth",
	RelBirthDate:    "date of birth",
	RelOccupation:   "occupation",
	RelAward:        "award received",
	RelEducatedAt:   "educated at",
	RelFieldOfWork:  "field of work",
	RelNotableWork:  "notable work",
	RelCitizenOf:    "country of citizenship",
	RelInCountry:    "country",
	RelPopulation:   "population",
	RelCapital:      "capital",
	RelContinent:    "continent",
	RelOfficialLang: "official language",
	RelArea:         "area",
	RelLocatedIn:    "country",
	RelInflow:       "inflows",
	RelCovers:       "covers country",
	RelElevation:    "elevation above sea level",
	RelFlowsThrough: "basin country",
	RelLength:       "length",
	RelFoundedBy:    "founded by",
	RelHeadquarters: "headquarters location",
	RelIndustry:     "industry",
	RelProduct:      "product or material produced",
	RelUnivIn:       "located in city",
	RelInception:    "inception",
	RelCreator:      "creator",
	RelGenre:        "genre",
	RelPubYear:      "publication date",
	RelAwardFor:     "field",
}

// freebaseLabels follows Freebase domain/type/property path conventions.
var freebaseLabels = map[RelKey]string{
	RelBornIn:       "people/person/place_of_birth",
	RelBirthDate:    "people/person/date_of_birth",
	RelOccupation:   "people/person/profession",
	RelAward:        "award/award_winner/awards_won",
	RelEducatedAt:   "education/education/institution",
	RelFieldOfWork:  "people/person/field_of_work",
	RelNotableWork:  "people/person/notable_works",
	RelCitizenOf:    "people/person/nationality",
	RelInCountry:    "location/location/containedby",
	RelPopulation:   "location/statistical_region/population",
	RelCapital:      "location/country/capital",
	RelContinent:    "location/location/continent",
	RelOfficialLang: "location/country/official_language",
	RelArea:         "geography/lake/surface_area",
	RelLocatedIn:    "location/location/containedby",
	RelInflow:       "geography/lake/inflow",
	RelCovers:       "geography/mountain_range/spans_country",
	RelElevation:    "geography/mountain/elevation",
	RelFlowsThrough: "geography/river/basin_countries",
	RelLength:       "geography/river/length",
	RelFoundedBy:    "organization/organization/founders",
	RelHeadquarters: "organization/organization/headquarters",
	RelIndustry:     "organization/organization/industry",
	RelProduct:      "business/company/product",
	RelUnivIn:       "education/university/city",
	RelInception:    "organization/organization/date_founded",
	RelCreator:      "media/work/created_by",
	RelGenre:        "media/work/genre",
	RelPubYear:      "media/work/release_date",
	RelAwardFor:     "award/award_category/field",
}

// WikidataSchema returns the Wikidata-flavoured schema. A fraction of the
// biography-style facts that SimpleQuestions asks about single-hop in
// Freebase is absent here (see Schema.dropRels), reproducing the source
// mismatch the paper cites in Table III.
func WikidataSchema() *Schema {
	return &Schema{
		Source:     kg.SourceWikidata,
		relLabel:   wikidataLabels,
		entityCase: func(s string) string { return s },
		dropRels: map[RelKey]bool{
			RelBirthDate:    true,
			RelOccupation:   true,
			RelInception:    true,
			RelPubYear:      true,
			RelHeadquarters: true,
			RelIndustry:     true,
			RelGenre:        true,
			RelElevation:    true,
		},
		dropRate: 0.60,
	}
}

// FreebaseSchema returns the Freebase-flavoured schema. Entity surfaces are
// lower-cased, mirroring Freebase MID label conventions in SimpleQuestions
// dumps; this forces the pipeline's case-insensitive matching paths to do
// real work.
func FreebaseSchema() *Schema {
	return &Schema{
		Source:     kg.SourceFreebase,
		relLabel:   freebaseLabels,
		entityCase: strings.ToLower,
	}
}

// SchemaFor returns the schema for a source.
func SchemaFor(src kg.Source) (*Schema, error) {
	switch src {
	case kg.SourceWikidata:
		return WikidataSchema(), nil
	case kg.SourceFreebase:
		return FreebaseSchema(), nil
	default:
		return nil, fmt.Errorf("world: no schema for source %q", src)
	}
}

// RelationLabel returns the schema's surface form for a canonical relation.
func (s *Schema) RelationLabel(key RelKey) string {
	if l, ok := s.relLabel[key]; ok {
		return l
	}
	// Fall back to the canonical key with underscores humanised, so new
	// relations degrade gracefully rather than vanishing.
	return strings.ReplaceAll(string(key), "_", " ")
}

// EntitySurface returns the schema's rendering of an entity name.
func (s *Schema) EntitySurface(name string) string {
	return s.entityCase(name)
}

// RenderFact converts one canonical fact into a schema-surface triple.
func (s *Schema) RenderFact(w *World, f Fact) kg.Triple {
	subj := s.EntitySurface(w.Entities[f.Subject].Name)
	obj := f.Literal
	if f.ObjectIsEntity() {
		obj = s.EntitySurface(w.Entities[f.Object].Name)
	}
	return kg.Triple{
		Subject:  subj,
		Relation: s.RelationLabel(f.Rel),
		Object:   obj,
		Source:   s.Source,
		Ord:      f.Ord,
	}
}

// surfaceToRel maps every known relation surface form — Wikidata labels,
// Freebase paths, and humanised canonical keys — back to the canonical
// relation. Built once at init.
var surfaceToRel = func() map[string]RelKey {
	m := make(map[string]RelKey)
	add := func(s string, k RelKey) {
		s = strings.ToLower(strings.TrimSpace(s))
		if s == "" {
			return
		}
		if _, exists := m[s]; !exists {
			m[s] = k
		}
	}
	for _, r := range Relations {
		add(strings.ReplaceAll(string(r.Key), "_", " "), r.Key)
		add(wikidataLabels[r.Key], r.Key)
		add(freebaseLabels[r.Key], r.Key)
		// Freebase paths also appear humanised after Cypher decoding
		// ("people/person/place_of_birth" survives as-is in triple text,
		// but pseudo-graph decoding lower-cases underscores to spaces).
		add(strings.ReplaceAll(freebaseLabels[r.Key], "_", " "), r.Key)
	}
	return m
}()

// SurfaceToRel maps a relation surface form (any schema, any casing) back
// to the canonical relation, if recognised.
func SurfaceToRel(surface string) (RelKey, bool) {
	k, ok := surfaceToRel[strings.ToLower(strings.TrimSpace(surface))]
	return k, ok
}

// Covers reports whether this schema materialises the given fact; facts of
// partially covered relations are dropped deterministically by fact ID.
func (s *Schema) Covers(f Fact) bool {
	if s.dropRate <= 0 || !s.dropRels[f.Rel] {
		return true
	}
	h := fnv(uint64(f.ID)*2654435761 + uint64(s.Source))
	return float64(h>>11)/float64(1<<53) >= s.dropRate
}

// fnv scrambles an integer (splitmix-style) for coverage decisions.
func fnv(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Render materialises the whole world into a frozen triple store in this
// schema.
func (s *Schema) Render(w *World) *kg.Store {
	st := kg.NewStore(s.Source)
	for _, f := range w.Facts {
		if !s.Covers(f) {
			continue
		}
		st.Add(s.RenderFact(w, f))
	}
	st.Freeze()
	return st
}
