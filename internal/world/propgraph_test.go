package world

import (
	"testing"

	"repro/internal/cypher"
)

func TestBuildPropGraph(t *testing.T) {
	w := MustGenerate(smallConfig())
	g := BuildPropGraph(w)
	if g.NodeCount() != len(w.Entities) {
		t.Fatalf("nodes = %d, want %d", g.NodeCount(), len(w.Entities))
	}
	// Every entity-valued fact becomes a relationship.
	wantRels := 0
	for _, f := range w.Facts {
		if f.ObjectIsEntity() {
			wantRels++
		}
	}
	if g.RelCount() != wantRels {
		t.Errorf("rels = %d, want %d", g.RelCount(), wantRels)
	}
	// Kind labels are CamelCase.
	if n := len(g.NodesByLabel("MountainRange")); n != smallConfig().Mountains {
		t.Errorf("MountainRange nodes = %d, want %d", n, smallConfig().Mountains)
	}
	// Time-varying properties keep only the current value.
	city := w.Entities[w.OfKind(KindCity)[0]]
	cur, _ := w.CurrentFact(city.ID, RelPopulation)
	found := false
	for _, n := range g.NodesByLabel("City") {
		if n.Name() == city.Name {
			found = true
			if v, ok := n.Props["population"]; !ok || v.String() != cur.Literal {
				t.Errorf("city population = %v, want %q", v, cur.Literal)
			}
		}
	}
	if !found {
		t.Fatalf("city %q not in graph", city.Name)
	}
}

func TestPropGraphQueryable(t *testing.T) {
	w := MustGenerate(smallConfig())
	g := BuildPropGraph(w)
	// Replay into an executor (as cmd/cyphersh does) and query one hop.
	ex := cypher.NewExecutor()
	target := ex.Graph()
	for _, n := range g.Nodes() {
		target.CreateNode(n.Labels, n.Props)
	}
	for _, r := range g.Rels() {
		if _, err := target.CreateRel(r.From, r.To, r.Type, nil); err != nil {
			t.Fatal(err)
		}
	}
	script, err := cypher.Parse("MATCH (m:MountainRange)-[:COVERS]->(c:Country) RETURN m.name, c.name")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := ex.Query(script.Statements[0].(*cypher.MatchStmt))
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(w.FactsByRel(RelCovers))
	if len(rows) != wantRows {
		t.Errorf("query returned %d rows, want %d", len(rows), wantRows)
	}
	for _, row := range rows {
		if len(row.Values) != 2 || row.Values[0] == "" || row.Values[1] == "" {
			t.Fatalf("bad row: %v", row.Values)
		}
	}
}

func TestCamelAndShouty(t *testing.T) {
	if camelLabel("mountain range") != "MountainRange" {
		t.Error("camelLabel wrong")
	}
	if camelLabel("city") != "City" {
		t.Error("camelLabel single word wrong")
	}
	if shoutyType(RelBornIn) != "BORN_IN" {
		t.Error("shoutyType wrong")
	}
}
