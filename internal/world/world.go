// Package world generates the deterministic synthetic world that replaces
// Wikidata/Freebase dumps and the paper's three datasets (DESIGN.md §2).
//
// The world is a set of typed entities connected by canonical facts. The
// same world is rendered into two different KG schemas (internal/kg), drives
// question generation (internal/datasets), and seeds the simulated LLM's
// imperfect parametric memory (internal/llm). Keeping one underlying world
// with multiple projections is what makes the paper's multi-source
// generalisation experiment (Table III) meaningful here: the facts agree,
// the schemas do not.
package world

import (
	"fmt"
	"sort"
)

// Kind is an entity type.
type Kind int

const (
	KindPerson Kind = iota
	KindCity
	KindCountry
	KindContinent
	KindLake
	KindMountain
	KindRiver
	KindCompany
	KindUniversity
	KindWork
	KindAward
	KindField
	KindLanguage
	kindCount
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindPerson:
		return "person"
	case KindCity:
		return "city"
	case KindCountry:
		return "country"
	case KindContinent:
		return "continent"
	case KindLake:
		return "lake"
	case KindMountain:
		return "mountain range"
	case KindRiver:
		return "river"
	case KindCompany:
		return "company"
	case KindUniversity:
		return "university"
	case KindWork:
		return "work"
	case KindAward:
		return "award"
	case KindField:
		return "field"
	case KindLanguage:
		return "language"
	default:
		return "unknown"
	}
}

// Entity is one world entity.
type Entity struct {
	ID   int
	Kind Kind
	Name string
}

// RelKey identifies a canonical relation, independent of KG schema.
type RelKey string

// Canonical relations. Each has a Wikidata-flavoured label and a
// Freebase-flavoured path (see Schema in internal/world/render.go).
const (
	RelBornIn      RelKey = "born_in"
	RelBirthDate   RelKey = "birth_date"
	RelOccupation  RelKey = "occupation"
	RelAward       RelKey = "award"
	RelEducatedAt  RelKey = "educated_at"
	RelFieldOfWork RelKey = "field_of_work"
	RelNotableWork RelKey = "notable_work"
	RelCitizenOf   RelKey = "citizen_of"

	RelInCountry  RelKey = "in_country"
	RelPopulation RelKey = "population"

	RelCapital      RelKey = "capital"
	RelContinent    RelKey = "continent"
	RelOfficialLang RelKey = "official_language"

	RelArea      RelKey = "area"
	RelLocatedIn RelKey = "located_in"
	RelInflow    RelKey = "inflow"

	RelCovers    RelKey = "covers"
	RelElevation RelKey = "elevation"

	RelFlowsThrough RelKey = "flows_through"
	RelLength       RelKey = "length"

	RelFoundedBy    RelKey = "founded_by"
	RelHeadquarters RelKey = "headquarters"
	RelIndustry     RelKey = "industry"
	RelProduct      RelKey = "product"

	RelUnivIn    RelKey = "university_in"
	RelInception RelKey = "inception"

	RelCreator  RelKey = "creator"
	RelGenre    RelKey = "genre"
	RelPubYear  RelKey = "publication_year"
	RelAwardFor RelKey = "award_field"
)

// RelInfo describes a canonical relation.
type RelInfo struct {
	Key RelKey
	// SubjectKind constrains subjects; ObjectKind is the object's entity
	// kind when the relation is entity-valued (ObjectLiteral false).
	SubjectKind Kind
	ObjectKind  Kind
	// ObjectLiteral is true when the object is a literal (number, date).
	ObjectLiteral bool
	// Functional relations have exactly one current value per subject.
	Functional bool
	// TimeVarying relations (population) have multiple ordinal values; the
	// latest is the correct answer.
	TimeVarying bool
}

// Relations lists every canonical relation, in stable order.
var Relations = []RelInfo{
	{Key: RelBornIn, SubjectKind: KindPerson, ObjectKind: KindCity, Functional: true},
	{Key: RelBirthDate, SubjectKind: KindPerson, ObjectLiteral: true, Functional: true},
	{Key: RelOccupation, SubjectKind: KindPerson, ObjectKind: KindField, Functional: true},
	{Key: RelAward, SubjectKind: KindPerson, ObjectKind: KindAward},
	{Key: RelEducatedAt, SubjectKind: KindPerson, ObjectKind: KindUniversity, Functional: true},
	{Key: RelFieldOfWork, SubjectKind: KindPerson, ObjectKind: KindField, Functional: true},
	{Key: RelNotableWork, SubjectKind: KindPerson, ObjectKind: KindWork},
	{Key: RelCitizenOf, SubjectKind: KindPerson, ObjectKind: KindCountry, Functional: true},

	{Key: RelInCountry, SubjectKind: KindCity, ObjectKind: KindCountry, Functional: true},
	{Key: RelPopulation, SubjectKind: KindCity, ObjectLiteral: true, Functional: true, TimeVarying: true},

	{Key: RelCapital, SubjectKind: KindCountry, ObjectKind: KindCity, Functional: true},
	{Key: RelContinent, SubjectKind: KindCountry, ObjectKind: KindContinent, Functional: true},
	{Key: RelOfficialLang, SubjectKind: KindCountry, ObjectKind: KindLanguage, Functional: true},

	{Key: RelArea, SubjectKind: KindLake, ObjectLiteral: true, Functional: true},
	{Key: RelLocatedIn, SubjectKind: KindLake, ObjectKind: KindCountry, Functional: true},
	{Key: RelInflow, SubjectKind: KindLake, ObjectKind: KindRiver},

	{Key: RelCovers, SubjectKind: KindMountain, ObjectKind: KindCountry},
	{Key: RelElevation, SubjectKind: KindMountain, ObjectLiteral: true, Functional: true},

	{Key: RelFlowsThrough, SubjectKind: KindRiver, ObjectKind: KindCountry},
	{Key: RelLength, SubjectKind: KindRiver, ObjectLiteral: true, Functional: true},

	{Key: RelFoundedBy, SubjectKind: KindCompany, ObjectKind: KindPerson, Functional: true},
	{Key: RelHeadquarters, SubjectKind: KindCompany, ObjectKind: KindCity, Functional: true},
	{Key: RelIndustry, SubjectKind: KindCompany, ObjectKind: KindField, Functional: true},
	{Key: RelProduct, SubjectKind: KindCompany, ObjectKind: KindWork},

	{Key: RelUnivIn, SubjectKind: KindUniversity, ObjectKind: KindCity, Functional: true},
	{Key: RelInception, SubjectKind: KindUniversity, ObjectLiteral: true, Functional: true},

	{Key: RelCreator, SubjectKind: KindWork, ObjectKind: KindPerson, Functional: true},
	{Key: RelGenre, SubjectKind: KindWork, ObjectKind: KindField, Functional: true},
	{Key: RelPubYear, SubjectKind: KindWork, ObjectLiteral: true, Functional: true},

	{Key: RelAwardFor, SubjectKind: KindAward, ObjectKind: KindField, Functional: true},
}

// RelByKey returns the RelInfo for a key.
func RelByKey(key RelKey) (RelInfo, bool) {
	for _, r := range Relations {
		if r.Key == key {
			return r, true
		}
	}
	return RelInfo{}, false
}

// Fact is one canonical statement: subject entity, relation, and either an
// object entity or a literal value. Ord orders time-varying values; the
// highest Ord is current.
type Fact struct {
	ID      int
	Subject int
	Rel     RelKey
	Object  int    // entity ID, or -1 for literal facts
	Literal string // literal surface, e.g. "1443497378" or "1927-09-04"
	Ord     int
}

// ObjectIsEntity reports whether the fact's object is an entity reference.
func (f Fact) ObjectIsEntity() bool { return f.Object >= 0 }

// World is the generated universe.
type World struct {
	Entities []Entity
	Facts    []Fact

	byKind map[Kind][]int
	// bySR maps (subject, rel) to fact indices in Ord order.
	bySR map[srKey][]int
	// bySubject maps subject entity to its fact indices.
	bySubject map[int][]int
	// byRel maps relation to fact indices.
	byRel map[RelKey][]int
	// byName maps entity name to ID (names are unique by construction).
	byName map[string]int
}

type srKey struct {
	subject int
	rel     RelKey
}

// index (re)builds lookup maps; the generator calls it once.
func (w *World) index() {
	w.byKind = make(map[Kind][]int)
	w.bySR = make(map[srKey][]int)
	w.bySubject = make(map[int][]int)
	w.byRel = make(map[RelKey][]int)
	w.byName = make(map[string]int, len(w.Entities))
	for _, e := range w.Entities {
		w.byKind[e.Kind] = append(w.byKind[e.Kind], e.ID)
		w.byName[e.Name] = e.ID
	}
	for i, f := range w.Facts {
		k := srKey{f.Subject, f.Rel}
		w.bySR[k] = append(w.bySR[k], i)
		w.bySubject[f.Subject] = append(w.bySubject[f.Subject], i)
		w.byRel[f.Rel] = append(w.byRel[f.Rel], i)
	}
	for _, ids := range w.bySR {
		sort.SliceStable(ids, func(a, b int) bool {
			return w.Facts[ids[a]].Ord < w.Facts[ids[b]].Ord
		})
	}
}

// Entity returns the entity with the given ID.
func (w *World) Entity(id int) Entity {
	return w.Entities[id]
}

// EntityByName looks an entity up by exact name.
func (w *World) EntityByName(name string) (Entity, bool) {
	id, ok := w.byName[name]
	if !ok {
		return Entity{}, false
	}
	return w.Entities[id], true
}

// OfKind returns all entity IDs of a kind, in creation order.
func (w *World) OfKind(k Kind) []int {
	return w.byKind[k]
}

// FactsOf returns the facts whose subject is the given entity.
func (w *World) FactsOf(subject int) []Fact {
	idxs := w.bySubject[subject]
	out := make([]Fact, 0, len(idxs))
	for _, i := range idxs {
		out = append(out, w.Facts[i])
	}
	return out
}

// FactsSR returns the facts for (subject, relation) in Ord order.
func (w *World) FactsSR(subject int, rel RelKey) []Fact {
	idxs := w.bySR[srKey{subject, rel}]
	out := make([]Fact, 0, len(idxs))
	for _, i := range idxs {
		out = append(out, w.Facts[i])
	}
	return out
}

// CurrentFact returns the latest-ordinal fact for (subject, relation), used
// for time-varying relations where only the newest value is correct.
func (w *World) CurrentFact(subject int, rel RelKey) (Fact, bool) {
	fs := w.FactsSR(subject, rel)
	if len(fs) == 0 {
		return Fact{}, false
	}
	return fs[len(fs)-1], true
}

// FactsByRel returns all facts with the given relation.
func (w *World) FactsByRel(rel RelKey) []Fact {
	idxs := w.byRel[rel]
	out := make([]Fact, 0, len(idxs))
	for _, i := range idxs {
		out = append(out, w.Facts[i])
	}
	return out
}

// ObjectSurface returns the fact's object as display text: the entity name
// or the literal.
func (w *World) ObjectSurface(f Fact) string {
	if f.ObjectIsEntity() {
		return w.Entities[f.Object].Name
	}
	return f.Literal
}

// Stats summarises the world.
type Stats struct {
	Entities int
	Facts    int
	ByKind   map[string]int
}

// Stats returns world statistics.
func (w *World) Stats() Stats {
	s := Stats{Entities: len(w.Entities), Facts: len(w.Facts), ByKind: map[string]int{}}
	for _, e := range w.Entities {
		s.ByKind[e.Kind.String()]++
	}
	return s
}

// String renders the stats.
func (s Stats) String() string {
	return fmt.Sprintf("world: %d entities, %d facts", s.Entities, s.Facts)
}
