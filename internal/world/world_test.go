package world

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/kg"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.People = 80
	cfg.Cities = 30
	cfg.Countries = 15
	cfg.Works = 50
	cfg.Companies = 20
	cfg.Universities = 12
	cfg.Lakes = 20
	cfg.Mountains = 10
	cfg.Rivers = 20
	return cfg
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(smallConfig())
	b := MustGenerate(smallConfig())
	if len(a.Entities) != len(b.Entities) || len(a.Facts) != len(b.Facts) {
		t.Fatal("sizes differ across runs")
	}
	for i := range a.Entities {
		if a.Entities[i] != b.Entities[i] {
			t.Fatalf("entity %d differs: %v vs %v", i, a.Entities[i], b.Entities[i])
		}
	}
	for i := range a.Facts {
		if a.Facts[i] != b.Facts[i] {
			t.Fatalf("fact %d differs", i)
		}
	}
}

func TestGenerateSeedSensitivity(t *testing.T) {
	cfg := smallConfig()
	a := MustGenerate(cfg)
	cfg.Seed = 99
	b := MustGenerate(cfg)
	same := 0
	for i := range a.Entities {
		if i < len(b.Entities) && a.Entities[i].Name == b.Entities[i].Name {
			same++
		}
	}
	if same == len(a.Entities) {
		t.Error("different seeds produced identical entity names")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := smallConfig()
	bad.People = 0
	if _, err := Generate(bad); err == nil {
		t.Error("People=0 accepted")
	}
	bad = smallConfig()
	bad.PopulationRevisions = 0
	if _, err := Generate(bad); err == nil {
		t.Error("PopulationRevisions=0 accepted")
	}
	bad = smallConfig()
	bad.Works = 1
	if _, err := Generate(bad); err == nil {
		t.Error("too few works accepted")
	}
}

func TestEntityNamesUnique(t *testing.T) {
	w := MustGenerate(smallConfig())
	seen := map[string]bool{}
	for _, e := range w.Entities {
		if seen[e.Name] {
			t.Fatalf("duplicate entity name %q", e.Name)
		}
		seen[e.Name] = true
	}
}

func TestEveryPersonHasCoreFacts(t *testing.T) {
	w := MustGenerate(smallConfig())
	for _, id := range w.OfKind(KindPerson) {
		for _, rel := range []RelKey{RelBornIn, RelBirthDate, RelCitizenOf, RelFieldOfWork, RelEducatedAt} {
			if len(w.FactsSR(id, rel)) == 0 {
				t.Fatalf("person %q lacks %s", w.Entities[id].Name, rel)
			}
		}
	}
}

func TestTimeVaryingPopulation(t *testing.T) {
	w := MustGenerate(smallConfig())
	for _, id := range w.OfKind(KindCity) {
		pops := w.FactsSR(id, RelPopulation)
		if len(pops) != smallConfig().PopulationRevisions {
			t.Fatalf("city has %d population revisions, want %d", len(pops), smallConfig().PopulationRevisions)
		}
		for i := 1; i < len(pops); i++ {
			if pops[i-1].Ord >= pops[i].Ord {
				t.Fatal("population ords not increasing")
			}
			a, _ := strconv.ParseInt(pops[i-1].Literal, 10, 64)
			b, _ := strconv.ParseInt(pops[i].Literal, 10, 64)
			if b <= a {
				t.Fatal("populations should grow across revisions")
			}
		}
		cur, ok := w.CurrentFact(id, RelPopulation)
		if !ok || cur.Ord != len(pops)-1 {
			t.Fatal("CurrentFact should return the last revision")
		}
	}
}

func TestBirthplaceConsistency(t *testing.T) {
	// Citizenship must match the birth city's country (generator invariant
	// that the multi-hop QALD chains rely on).
	w := MustGenerate(smallConfig())
	for _, p := range w.OfKind(KindPerson) {
		born := w.FactsSR(p, RelBornIn)
		citizen := w.FactsSR(p, RelCitizenOf)
		if len(born) != 1 || len(citizen) != 1 {
			t.Fatal("born/citizen cardinality wrong")
		}
		country := w.FactsSR(born[0].Object, RelInCountry)
		if len(country) != 1 || country[0].Object != citizen[0].Object {
			t.Fatalf("person %q: citizenship %q != birth country %q",
				w.Entities[p].Name,
				w.Entities[citizen[0].Object].Name,
				w.Entities[country[0].Object].Name)
		}
	}
}

func TestPopularityMonotonic(t *testing.T) {
	w := MustGenerate(smallConfig())
	people := w.OfKind(KindPerson)
	prev := 2.0
	for _, id := range people {
		pop := w.Popularity(id)
		if pop <= 0 || pop > 1 {
			t.Fatalf("popularity out of range: %v", pop)
		}
		if pop > prev {
			t.Fatal("popularity should not increase with rank")
		}
		prev = pop
	}
	if w.Popularity(-1) != 0 || w.Popularity(1<<30) != 0 {
		t.Error("out-of-range popularity should be 0")
	}
}

func TestHeadEntities(t *testing.T) {
	w := MustGenerate(smallConfig())
	heads := w.HeadEntities(KindPerson, 0.25)
	all := w.OfKind(KindPerson)
	if len(heads) != len(all)/4 {
		t.Errorf("HeadEntities(0.25) = %d of %d", len(heads), len(all))
	}
	for i, id := range heads {
		if id != all[i] {
			t.Error("heads should be a prefix of creation order")
		}
	}
	if got := w.HeadEntities(KindPerson, 0.000001); len(got) != 1 {
		t.Errorf("tiny frac should clamp to 1, got %d", len(got))
	}
}

func TestEntityByName(t *testing.T) {
	w := MustGenerate(smallConfig())
	e := w.Entities[10]
	got, ok := w.EntityByName(e.Name)
	if !ok || got.ID != e.ID {
		t.Errorf("EntityByName(%q) = %v, %v", e.Name, got, ok)
	}
	if _, ok := w.EntityByName("no such entity"); ok {
		t.Error("found nonexistent entity")
	}
}

func TestRelByKey(t *testing.T) {
	info, ok := RelByKey(RelPopulation)
	if !ok || !info.TimeVarying || !info.ObjectLiteral {
		t.Errorf("RelPopulation info = %+v", info)
	}
	if _, ok := RelByKey("nonexistent"); ok {
		t.Error("found nonexistent relation")
	}
}

func TestSchemaRendering(t *testing.T) {
	w := MustGenerate(smallConfig())
	wiki := WikidataSchema().Render(w)
	free := FreebaseSchema().Render(w)
	if wiki.Source() != kg.SourceWikidata || free.Source() != kg.SourceFreebase {
		t.Fatal("store sources wrong")
	}
	// Wikidata drops some facts (partial coverage); Freebase renders all
	// (modulo surface-duplicate facts, which the store dedups).
	if free.Len() > len(w.Facts) || free.Len() < len(w.Facts)-len(w.Facts)/50 {
		t.Errorf("freebase store = %d triples, want ~%d", free.Len(), len(w.Facts))
	}
	if wiki.Len() >= free.Len() {
		t.Errorf("wikidata store should be smaller due to coverage gaps: %d vs %d",
			wiki.Len(), free.Len())
	}
	// Freebase lower-cases entities.
	person := w.Entities[w.OfKind(KindPerson)[0]]
	if free.HasSubject(person.Name) {
		t.Error("freebase store should not contain canonical-case subjects")
	}
	if !wiki.HasSubject(person.Name) {
		t.Error("wikidata store should contain canonical-case subjects")
	}
}

func TestSchemaRelationLabelsDiffer(t *testing.T) {
	wk := WikidataSchema()
	fb := FreebaseSchema()
	differing := 0
	for _, r := range Relations {
		if wk.RelationLabel(r.Key) != fb.RelationLabel(r.Key) {
			differing++
		}
	}
	if differing < len(Relations)-2 {
		t.Errorf("only %d of %d relation labels differ between schemas", differing, len(Relations))
	}
}

func TestSchemaFor(t *testing.T) {
	if _, err := SchemaFor(kg.SourceWikidata); err != nil {
		t.Error(err)
	}
	if _, err := SchemaFor(kg.SourceFreebase); err != nil {
		t.Error(err)
	}
	if _, err := SchemaFor(kg.SourceUnknown); err == nil {
		t.Error("SchemaFor(unknown) should fail")
	}
}

func TestSurfaceToRel(t *testing.T) {
	tests := []struct {
		surface string
		want    RelKey
	}{
		{"place of birth", RelBornIn},
		{"people/person/place_of_birth", RelBornIn},
		{"population", RelPopulation},
		{"location/statistical_region/population", RelPopulation},
		{"PLACE OF BIRTH", RelBornIn}, // case-insensitive
	}
	for _, tt := range tests {
		got, ok := SurfaceToRel(tt.surface)
		if !ok || got != tt.want {
			t.Errorf("SurfaceToRel(%q) = %v, %v; want %v", tt.surface, got, ok, tt.want)
		}
	}
	if _, ok := SurfaceToRel("no such relation"); ok {
		t.Error("resolved an unknown surface")
	}
}

func TestCoversDeterministic(t *testing.T) {
	s := WikidataSchema()
	f := func(id uint16) bool {
		fact := Fact{ID: int(id), Rel: RelBirthDate}
		return s.Covers(fact) == s.Covers(fact)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCoversFullForUndroppedRels(t *testing.T) {
	s := WikidataSchema()
	for i := 0; i < 100; i++ {
		if !s.Covers(Fact{ID: i, Rel: RelBornIn}) {
			t.Fatal("undropped relation was dropped")
		}
	}
}

func TestObjectSurface(t *testing.T) {
	w := MustGenerate(smallConfig())
	for _, f := range w.Facts[:50] {
		got := w.ObjectSurface(f)
		if f.ObjectIsEntity() {
			if got != w.Entities[f.Object].Name {
				t.Fatalf("entity surface wrong")
			}
		} else if got != f.Literal {
			t.Fatalf("literal surface wrong")
		}
	}
}

func TestStats(t *testing.T) {
	w := MustGenerate(smallConfig())
	s := w.Stats()
	if s.Entities != len(w.Entities) || s.Facts != len(w.Facts) {
		t.Errorf("stats = %+v", s)
	}
	if s.ByKind["person"] != 80 {
		t.Errorf("person count = %d", s.ByKind["person"])
	}
	if s.String() == "" {
		t.Error("empty stats string")
	}
}

// TestWikidataDropRate: the coverage gaps must remove roughly the
// configured fraction of dropped-relation facts, and nothing else.
func TestWikidataDropRate(t *testing.T) {
	w := MustGenerate(smallConfig())
	s := WikidataSchema()
	droppedRel, keptRel, otherDropped := 0, 0, 0
	totalDroppedRelFacts := 0
	for _, f := range w.Facts {
		if s.dropRels[f.Rel] {
			totalDroppedRelFacts++
			if s.Covers(f) {
				keptRel++
			} else {
				droppedRel++
			}
		} else if !s.Covers(f) {
			otherDropped++
		}
	}
	if otherDropped != 0 {
		t.Errorf("%d facts of undropped relations were dropped", otherDropped)
	}
	rate := float64(droppedRel) / float64(totalDroppedRelFacts)
	if rate < s.dropRate-0.1 || rate > s.dropRate+0.1 {
		t.Errorf("observed drop rate %.3f, configured %.2f", rate, s.dropRate)
	}
	_ = keptRel
}

func TestWorldJSONRoundTrip(t *testing.T) {
	w := MustGenerate(smallConfig())
	var buf bytes.Buffer
	if err := w.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Entities) != len(w.Entities) || len(loaded.Facts) != len(w.Facts) {
		t.Fatalf("sizes: %d/%d entities, %d/%d facts",
			len(loaded.Entities), len(w.Entities), len(loaded.Facts), len(w.Facts))
	}
	for i := range w.Entities {
		if loaded.Entities[i] != w.Entities[i] {
			t.Fatalf("entity %d differs", i)
		}
	}
	for i := range w.Facts {
		if loaded.Facts[i] != w.Facts[i] {
			t.Fatalf("fact %d differs: %+v vs %+v", i, loaded.Facts[i], w.Facts[i])
		}
	}
	// Indexes must be rebuilt: a lookup works.
	p := loaded.OfKind(KindPerson)[0]
	if len(loaded.FactsSR(p, RelBornIn)) != 1 {
		t.Error("loaded world indexes broken")
	}
}

func TestWorldReadJSONValidation(t *testing.T) {
	cases := []string{
		`not json`,
		`{"entities":[{"id":1,"kind":"person","name":"x"}],"facts":[]}`,                             // non-dense ID
		`{"entities":[{"id":0,"kind":"martian","name":"x"}],"facts":[]}`,                            // bad kind
		`{"entities":[{"id":0,"kind":"person","name":""}],"facts":[]}`,                              // empty name
		`{"entities":[{"id":0,"kind":"person","name":"x"}],"facts":[{"s":5,"r":"born_in","o":0}]}`,  // bad subject
		`{"entities":[{"id":0,"kind":"person","name":"x"}],"facts":[{"s":0,"r":"born_in","o":-1}]}`, // no object, no literal
	}
	for _, c := range cases {
		if _, err := ReadJSON(strings.NewReader(c)); err == nil {
			t.Errorf("accepted invalid world: %s", c)
		}
	}
}
