package world

import (
	"math/rand"
	"strings"
)

// namer synthesises distinct, pronounceable entity names per kind. Full
// names are unique within a world, but their component words are drawn
// from shared pools — many people share a surname, many cities share a
// base word, lakes and rivers reuse the same hydronyms. This token
// sharing matters: real KGs are full of near-collisions, and question-level
// semantic retrieval (the RAG baseline) has to disambiguate among entities
// that share name tokens, while atomic pseudo-triple queries carry extra
// relation/object signal. Globally unique tokens would hand every
// retrieval method a free ride.
type namer struct {
	rng  *rand.Rand
	used map[string]bool

	firstPool   []string
	surnamePool []string
	placePool   []string
	hydroPool   []string
	orgPool     []string
}

const (
	firstPoolSize   = 60
	surnamePoolSize = 80
	placePoolSize   = 70
	hydroPoolSize   = 50
	orgPoolSize     = 60
)

func newNamer(rng *rand.Rand) *namer {
	n := &namer{rng: rng, used: make(map[string]bool)}
	n.firstPool = n.wordPool(firstPoolSize)
	n.surnamePool = n.wordPool(surnamePoolSize)
	n.placePool = n.wordPool(placePoolSize)
	n.hydroPool = n.wordPool(hydroPoolSize)
	n.orgPool = n.wordPool(orgPoolSize)
	return n
}

// wordPool generates size distinct capitalised words.
func (n *namer) wordPool(size int) []string {
	pool := make([]string, 0, size)
	seen := map[string]bool{}
	for len(pool) < size {
		w := n.word()
		if !seen[w] {
			seen[w] = true
			pool = append(pool, w)
		}
	}
	return pool
}

var (
	onsets = []string{"b", "br", "d", "dr", "f", "g", "gr", "h", "k", "kl", "l", "m", "n", "p", "pr", "r", "s", "st", "t", "tr", "v", "z", "sh", "th"}
	vowels = []string{"a", "e", "i", "o", "u", "ai", "ea", "ia", "or", "el"}
	codas  = []string{"", "l", "n", "r", "s", "t", "m", "nd", "rk", "x"}

	surnSuf    = []string{"", "", "son", "man", "berg", "ton", "ell", "ard", "wick", "stein"}
	cityPre    = []string{"", "", "", "North ", "South ", "East ", "West ", "Port ", "New "}
	citySuf    = []string{"burg", "ville", "ton", "ford", "haven", "port", "stad", "field", "mouth", "gate"}
	countrySuf = []string{"ia", "land", "stan", "ora", "ania", "esia"}
	mountSuf   = []string{" Mountains", " Range", " Highlands", " Peaks"}
	compSuf    = []string{" Corp", " Systems", " Industries", " Labs", " Group", " Dynamics"}
	workPre    = []string{"The ", ""}
	workSuf    = []string{" Principle", " Machine", " Chronicle", " Method", " Engine", " Atlas", " Codex", " Theorem"}
	awardPre   = []string{"", "Grand ", "International "}
	awardSuf   = []string{" Prize", " Medal", " Award"}
	fieldBases = []string{
		"artificial intelligence", "quantum computing", "marine biology",
		"astrophysics", "computational linguistics", "volcanology",
		"cryptography", "neuroscience", "paleontology", "robotics",
		"materials science", "epidemiology", "glaciology", "seismology",
		"oceanography", "genomics", "meteorology", "archaeology",
		"nanotechnology", "bioinformatics", "ecology", "immunology",
		"photonics", "hydrology", "entomology", "virology",
		"crystallography", "ornithology", "toxicology", "mycology",
	}
	langBases = []string{
		"Velsh", "Dorman", "Kentish", "Auric", "Bravani", "Celsan",
		"Drovic", "Elmarin", "Fentese", "Gorlic", "Halvian", "Istrian",
		"Jorvic", "Karelic", "Lumbrian", "Morvan", "Norric", "Ostalian",
		"Pellian", "Quorish", "Rendic", "Solvene", "Tarvish", "Ulmic",
	}
	continentNames = []string{"Aurelia", "Borvia", "Casteria", "Dromund", "Eastrel", "Feronia"}
)

// syllable emits one onset+vowel(+coda) syllable.
func (n *namer) syllable(withCoda bool) string {
	s := onsets[n.rng.Intn(len(onsets))] + vowels[n.rng.Intn(len(vowels))]
	if withCoda {
		s += codas[n.rng.Intn(len(codas))]
	}
	return s
}

// word emits a capitalised 2-3 syllable word.
func (n *namer) word() string {
	syls := 2 + n.rng.Intn(2)
	var b strings.Builder
	for i := 0; i < syls; i++ {
		b.WriteString(n.syllable(i == syls-1))
	}
	w := b.String()
	return strings.ToUpper(w[:1]) + w[1:]
}

// unique retries gen until an unused name appears; after sustained
// collision pressure it appends a numeral suffix.
func (n *namer) unique(gen func() string) string {
	for i := 0; ; i++ {
		name := gen()
		if i > 200 {
			name += " II"
		}
		if !n.used[name] {
			n.used[name] = true
			return name
		}
	}
}

func pick(rng *rand.Rand, pool []string) string {
	return pool[rng.Intn(len(pool))]
}

// Person returns a "First Last" name with pooled components.
func (n *namer) Person() string {
	return n.unique(func() string {
		first := pick(n.rng, n.firstPool)
		last := pick(n.rng, n.surnamePool) + surnSuf[n.rng.Intn(len(surnSuf))]
		return first + " " + last
	})
}

// City returns a city name with pooled base words.
func (n *namer) City() string {
	return n.unique(func() string {
		return cityPre[n.rng.Intn(len(cityPre))] +
			pick(n.rng, n.placePool) + citySuf[n.rng.Intn(len(citySuf))]
	})
}

// Country returns a country name.
func (n *namer) Country() string {
	return n.unique(func() string {
		return pick(n.rng, n.placePool) + countrySuf[n.rng.Intn(len(countrySuf))]
	})
}

// Continent returns one of the fixed continent names, cycling.
func (n *namer) Continent(i int) string {
	name := continentNames[i%len(continentNames)]
	n.used[name] = true
	return name
}

// Lake returns "Lake X" with X from the shared hydronym pool.
func (n *namer) Lake() string {
	return n.unique(func() string { return "Lake " + pick(n.rng, n.hydroPool) })
}

// Mountain returns a mountain-range name.
func (n *namer) Mountain() string {
	return n.unique(func() string {
		return "The " + pick(n.rng, n.placePool) + mountSuf[n.rng.Intn(len(mountSuf))]
	})
}

// River returns "X River" with X from the shared hydronym pool.
func (n *namer) River() string {
	return n.unique(func() string { return pick(n.rng, n.hydroPool) + " River" })
}

// Company returns a company name with pooled org words.
func (n *namer) Company() string {
	return n.unique(func() string {
		return pick(n.rng, n.orgPool) + compSuf[n.rng.Intn(len(compSuf))]
	})
}

// University returns a university name, reusing place-pool words so that
// universities collide lexically with cities, as real ones do.
func (n *namer) University() string {
	return n.unique(func() string {
		if n.rng.Intn(2) == 0 {
			return "University of " + pick(n.rng, n.placePool)
		}
		return pick(n.rng, n.placePool) + " University"
	})
}

// Work returns the title of a created work/product.
func (n *namer) Work() string {
	return n.unique(func() string {
		return workPre[n.rng.Intn(len(workPre))] + pick(n.rng, n.orgPool) + workSuf[n.rng.Intn(len(workSuf))]
	})
}

// Award returns an award name.
func (n *namer) Award() string {
	return n.unique(func() string {
		return awardPre[n.rng.Intn(len(awardPre))] + pick(n.rng, n.surnamePool) + awardSuf[n.rng.Intn(len(awardSuf))]
	})
}

// Field returns a research-field name; the fixed pool is extended with
// synthesised "applied X" variants when exhausted.
func (n *namer) Field(i int) string {
	if i < len(fieldBases) {
		name := fieldBases[i]
		n.used[name] = true
		return name
	}
	return n.unique(func() string {
		return "applied " + strings.ToLower(n.word()) + " studies"
	})
}

// Language returns a language name.
func (n *namer) Language(i int) string {
	if i < len(langBases) {
		name := langBases[i]
		n.used[name] = true
		return name
	}
	return n.unique(func() string { return n.word() + "ese" })
}
