package world

import (
	"strings"

	"repro/internal/propgraph"
)

// BuildPropGraph materialises the world as a property graph: one node per
// entity (labelled by kind, CamelCase), literal facts as node properties
// (snake_case keys), entity facts as typed relationships (SHOUTY_SNAKE
// types from the canonical relation keys). Time-varying facts keep only
// the current revision as the property value. This is what cmd/cyphersh
// queries interactively — the Neo4j-substitute demo.
func BuildPropGraph(w *World) *propgraph.Graph {
	g := propgraph.New()
	nodeOf := make([]int, len(w.Entities))
	for _, e := range w.Entities {
		n := g.CreateNode(
			[]string{camelLabel(e.Kind.String())},
			map[string]propgraph.Value{"name": propgraph.StringValue(e.Name)},
		)
		nodeOf[e.ID] = n.ID
	}
	for _, e := range w.Entities {
		node, _ := g.Node(nodeOf[e.ID])
		for _, f := range w.FactsOf(e.ID) {
			info, _ := RelByKey(f.Rel)
			if f.ObjectIsEntity() {
				// Time-varying entity facts do not occur; add every edge.
				_, _ = g.CreateRel(nodeOf[e.ID], nodeOf[f.Object], shoutyType(f.Rel), nil)
				continue
			}
			if info.TimeVarying {
				// Keep only the current revision as the property.
				if cur, ok := w.CurrentFact(e.ID, f.Rel); ok && cur.ID == f.ID {
					node.Props[string(f.Rel)] = propgraph.StringValue(f.Literal)
				}
				continue
			}
			node.Props[string(f.Rel)] = propgraph.StringValue(f.Literal)
		}
	}
	return g
}

// camelLabel turns "mountain range" into "MountainRange".
func camelLabel(kind string) string {
	parts := strings.Fields(kind)
	for i, p := range parts {
		parts[i] = strings.ToUpper(p[:1]) + p[1:]
	}
	return strings.Join(parts, "")
}

// shoutyType turns "born_in" into "BORN_IN".
func shoutyType(rel RelKey) string {
	return strings.ToUpper(string(rel))
}
