package repl

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeNode simulates a pgakvd backend for router tests: /healthz,
// /v1/repl/info with a controllable epoch, and /v1/answer echoing the
// node's name and the epoch it held AT SERVE TIME — which is what a
// stale read would expose.
type fakeNode struct {
	name    string
	epoch   atomic.Uint64
	healthy atomic.Bool
	served  atomic.Uint64
	srv     *httptest.Server
}

func newFakeNode(t *testing.T, name string, epoch uint64) *fakeNode {
	t.Helper()
	n := &fakeNode{name: name}
	n.epoch.Store(epoch)
	n.healthy.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if !n.healthy.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("/v1/repl/info", func(w http.ResponseWriter, r *http.Request) {
		if !n.healthy.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		e := n.epoch.Load()
		writeJSON(w, http.StatusOK, InfoResponse{Sources: map[string]SourceInfo{
			"wikidata": {Epoch: e},
			"freebase": {Epoch: e},
		}})
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		n.served.Add(1)
		writeJSON(w, http.StatusOK, map[string]any{
			"node":  n.name,
			"epoch": n.epoch.Load(),
			"path":  r.URL.Path,
		})
	})
	n.srv = httptest.NewServer(mux)
	t.Cleanup(n.srv.Close)
	return n
}

type fakeAnswer struct {
	Node  string `json:"node"`
	Epoch uint64 `json:"epoch"`
	Path  string `json:"path"`
}

func newTestRouter(t *testing.T, primary *fakeNode, maxLag uint64, replicas ...*fakeNode) (*Router, *httptest.Server) {
	t.Helper()
	urls := make([]string, len(replicas))
	for i, r := range replicas {
		urls[i] = r.srv.URL
	}
	router, err := NewRouter(RouterConfig{
		Primary:       primary.srv.URL,
		Replicas:      urls,
		MaxLag:        maxLag,
		ProbeInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(router.Close)
	srv := httptest.NewServer(router)
	t.Cleanup(srv.Close)
	return router, srv
}

func doRead(t *testing.T, url string, minEpoch uint64) (fakeAnswer, *http.Response) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/answer", strings.NewReader(`{"question":"q"}`))
	if err != nil {
		t.Fatal(err)
	}
	if minEpoch > 0 {
		req.Header.Set("X-Min-Epoch", fmt.Sprint(minEpoch))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("read: %s", resp.Status)
	}
	var ans fakeAnswer
	if err := json.NewDecoder(resp.Body).Decode(&ans); err != nil {
		t.Fatal(err)
	}
	return ans, resp
}

// TestRouterReadYourWrites is the consistency property test: a client
// ingests at epoch E and immediately reads with X-Min-Epoch: E, 100
// times, while one replica stays artificially lagged. No read may ever
// observe an epoch below its requirement, and the lagged replica must
// never serve one of these reads.
func TestRouterReadYourWrites(t *testing.T) {
	primary := newFakeNode(t, "primary", 1)
	follower := newFakeNode(t, "follower", 1) // tracks the primary
	laggard := newFakeNode(t, "laggard", 1)   // frozen at epoch 1
	_, srv := newTestRouter(t, primary, 1<<30, follower, laggard)
	// MaxLag is huge on purpose: health must NOT be what saves us — the
	// laggard stays fully routable for plain reads, and only the
	// X-Min-Epoch check keeps required reads off it.

	stale := 0
	fromFollower := 0
	for i := 0; i < 100; i++ {
		// "Ingest": the primary moves to a new epoch E; the follower
		// applies it quickly (often before the router's next probe, so
		// the router's cached view genuinely lags the truth, exactly like
		// production).
		e := primary.epoch.Add(1)
		follower.epoch.Store(e)
		if i%5 == 0 {
			// Give probes a chance to observe the follower sometimes, so
			// both the replica path and the fallback path are exercised.
			time.Sleep(15 * time.Millisecond)
		}
		ans, resp := doRead(t, srv.URL, e)
		if ans.Epoch < e {
			stale++
			t.Errorf("read %d: required epoch %d, served epoch %d by %s", i, e, ans.Epoch, ans.Node)
		}
		if ans.Node == "laggard" {
			t.Errorf("read %d: min-epoch read served by the lagged replica", i)
		}
		if ans.Node == "follower" {
			fromFollower++
		}
		if got := resp.Header.Get("X-Served-By"); got == "" {
			t.Errorf("read %d: response missing X-Served-By", i)
		}
	}
	if stale != 0 {
		t.Fatalf("%d stale reads out of 100", stale)
	}
	if fromFollower == 0 {
		t.Fatal("no min-epoch read was ever served by the caught-up replica; the property was only tested against the primary fallback")
	}
	t.Logf("reads: %d from follower, %d primary fallbacks", fromFollower, 100-fromFollower)
}

// TestRouterPlainReadsAvoidLaggedReplica: without X-Min-Epoch the
// MaxLag health threshold is what keeps far-behind replicas out of
// rotation.
func TestRouterPlainReadsAvoidLaggedReplica(t *testing.T) {
	primary := newFakeNode(t, "primary", 100)
	laggard := newFakeNode(t, "laggard", 10) // 90 behind
	router, srv := newTestRouter(t, primary, 5, laggard)

	waitFor(t, 5*time.Second, "probes to see both nodes", func() bool {
		st := router.Status()
		return st.Primary.Epochs["wikidata"] == 100 && len(st.Replicas) == 1 && st.Replicas[0].Epochs["wikidata"] == 10
	})
	for i := 0; i < 20; i++ {
		ans, _ := doRead(t, srv.URL, 0)
		if ans.Node != "primary" {
			t.Fatalf("read %d routed to %s; the only replica is %d records behind MaxLag 5", i, ans.Node, 90)
		}
	}
	st := router.Status()
	if st.Replicas[0].LagByKG["wikidata"] != 90 {
		t.Fatalf("status lag = %d, want 90", st.Replicas[0].LagByKG["wikidata"])
	}
}

// TestRouterWritesGoToPrimary: ingests and snapshots never touch a
// replica, however healthy.
func TestRouterWritesGoToPrimary(t *testing.T) {
	primary := newFakeNode(t, "primary", 5)
	replica := newFakeNode(t, "replica", 5)
	router, srv := newTestRouter(t, primary, 64, replica)
	waitFor(t, 5*time.Second, "probe", func() bool { return router.Status().Replicas[0].Healthy })

	for _, path := range []string{"/v1/ingest", "/v1/snapshot/compact", "/v1/snapshot/checkpoint", "/v1/prompts/reload"} {
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(`{}`))
		if err != nil {
			t.Fatal(err)
		}
		var ans fakeAnswer
		if err := json.NewDecoder(resp.Body).Decode(&ans); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if ans.Node != "primary" {
			t.Fatalf("%s routed to %s, want primary", path, ans.Node)
		}
	}
}

// TestRouterFailsOverFromDeadReplica: a replica that stops answering
// probes drops out of rotation; reads keep flowing.
func TestRouterFailsOverFromDeadReplica(t *testing.T) {
	primary := newFakeNode(t, "primary", 5)
	replica := newFakeNode(t, "replica", 5)
	router, srv := newTestRouter(t, primary, 64, replica)
	waitFor(t, 5*time.Second, "replica healthy", func() bool { return router.Status().Replicas[0].Healthy })

	replica.healthy.Store(false)
	waitFor(t, 5*time.Second, "replica marked down", func() bool { return !router.Status().Replicas[0].Healthy })
	for i := 0; i < 10; i++ {
		ans, _ := doRead(t, srv.URL, 0)
		if ans.Node != "primary" {
			t.Fatalf("read routed to dead replica %s", ans.Node)
		}
	}
	// Recovery: the replica comes back and rejoins rotation.
	replica.healthy.Store(true)
	waitFor(t, 5*time.Second, "replica healthy again", func() bool { return router.Status().Replicas[0].Healthy })
	served := replica.served.Load()
	waitFor(t, 5*time.Second, "replica serving again", func() bool {
		doRead(t, srv.URL, 0)
		return replica.served.Load() > served
	})
}

// TestRouterRejectsBadMinEpoch: a malformed header is a 400, not a
// silently dropped consistency requirement.
func TestRouterRejectsBadMinEpoch(t *testing.T) {
	primary := newFakeNode(t, "primary", 1)
	_, srv := newTestRouter(t, primary, 64)
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/answer", strings.NewReader(`{}`))
	req.Header.Set("X-Min-Epoch", "not-a-number")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad X-Min-Epoch: %s, want 400", resp.Status)
	}
}
