// Package repl implements WAL-shipping replication for the substrate
// layer: a primary pgakvd streams its write-ahead log to read replicas
// over HTTP, replicas apply the records through the normal ingest path
// at exactly the primary's epochs, and a thin router (cmd/pgakvlb)
// load-balances reads across caught-up replicas while forwarding writes
// to the primary.
//
// The package splits into four pieces:
//
//   - wire.go: the stream framing shared by both ends. Records travel
//     in the substrate's own WAL payload encoding, re-framed with a
//     kind byte so heartbeats can interleave with records.
//   - source.go: the primary-side HTTP handlers (/v1/repl/info,
//     /v1/repl/stream, /v1/repl/bootstrap) mounted on any durable
//     pgakvd.
//   - applier.go + bootstrap.go: the replica side — a pre-flight
//     checkpoint bootstrap when the primary's log no longer reaches
//     back to local state, then a reconnecting stream-apply loop.
//   - router.go: the load-balancer core behind cmd/pgakvlb.
package repl

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/substrate"
)

// Aliases for the substrate types the wire carries, so the package's
// interfaces read in its own vocabulary.
type (
	WALRecord = substrate.WALRecord
	WALSub    = substrate.WALSub
)

// ErrTruncatedHistory mirrors substrate.ErrTruncatedHistory: the WAL no
// longer reaches back to the requested epoch.
var ErrTruncatedHistory = substrate.ErrTruncatedHistory

// streamMagic opens every /v1/repl/stream body so a replica talking to
// the wrong endpoint (a proxy error page, an old binary) fails fast
// instead of mis-parsing frames.
const streamMagic = "PGAKRPL1"

// Frame kinds. Records carry one WAL record in the substrate's payload
// encoding; heartbeats carry the primary's current head epoch so a
// replica can compute lag even when no records flow.
const (
	kindRecord    byte = 1
	kindHeartbeat byte = 2
)

// maxFrameBytes bounds a single frame payload. The substrate caps
// triples at 1 MiB each and ingest batches at 10k triples, so any
// legitimate record fits comfortably; anything larger is a corrupt or
// hostile stream.
const maxFrameBytes = 256 << 20

// streamWriter frames records and heartbeats onto one stream. Frame
// layout: [1-byte kind][u32 LE payload len][u32 LE CRC-32 (IEEE) of
// payload][payload]. The CRC is defense against infrastructure between
// the nodes (proxies, buffers) — the record bytes themselves are
// re-checksummed by the replica's own WAL append.
type streamWriter struct {
	w io.Writer
}

func newStreamWriter(w io.Writer) *streamWriter { return &streamWriter{w: w} }

func (sw *streamWriter) writeMagic() error {
	_, err := io.WriteString(sw.w, streamMagic)
	return err
}

func (sw *streamWriter) writeFrame(kind byte, payload []byte) error {
	var hdr [9]byte
	hdr[0] = kind
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[5:9], crc32.ChecksumIEEE(payload))
	if _, err := sw.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := sw.w.Write(payload)
	return err
}

func (sw *streamWriter) writeRecord(rec substrate.WALRecord) error {
	return sw.writeFrame(kindRecord, substrate.EncodeWALRecord(rec))
}

func (sw *streamWriter) writeHeartbeat(head uint64) error {
	var p [8]byte
	binary.LittleEndian.PutUint64(p[:], head)
	return sw.writeFrame(kindHeartbeat, p[:])
}

// frame is one decoded stream frame: exactly one of Record (kind 1) or
// Head (kind 2) is meaningful, per Kind.
type frame struct {
	Kind   byte
	Record substrate.WALRecord
	Head   uint64
}

// streamReader decodes the frames a streamWriter produced.
type streamReader struct {
	r *bufio.Reader
}

func newStreamReader(r io.Reader) *streamReader {
	return &streamReader{r: bufio.NewReaderSize(r, 64<<10)}
}

// readMagic consumes and verifies the stream preamble.
func (sr *streamReader) readMagic() error {
	buf := make([]byte, len(streamMagic))
	if _, err := io.ReadFull(sr.r, buf); err != nil {
		return fmt.Errorf("repl: reading stream magic: %w", err)
	}
	if string(buf) != streamMagic {
		return fmt.Errorf("repl: bad stream magic %q (not a replication stream)", buf)
	}
	return nil
}

// next reads one frame. io.EOF (clean close between frames) is returned
// verbatim; any mid-frame truncation surfaces as ErrUnexpectedEOF.
func (sr *streamReader) next() (frame, error) {
	var hdr [9]byte
	if _, err := io.ReadFull(sr.r, hdr[:1]); err != nil {
		return frame{}, err
	}
	if _, err := io.ReadFull(sr.r, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return frame{}, err
	}
	kind := hdr[0]
	n := binary.LittleEndian.Uint32(hdr[1:5])
	sum := binary.LittleEndian.Uint32(hdr[5:9])
	if n > maxFrameBytes {
		return frame{}, fmt.Errorf("repl: frame of %d bytes exceeds the %d-byte limit", n, maxFrameBytes)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(sr.r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return frame{}, err
	}
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return frame{}, fmt.Errorf("repl: frame checksum mismatch (got %08x, want %08x)", got, sum)
	}
	switch kind {
	case kindRecord:
		rec, err := substrate.DecodeWALRecord(payload)
		if err != nil {
			return frame{}, fmt.Errorf("repl: decoding record frame: %w", err)
		}
		return frame{Kind: kindRecord, Record: rec}, nil
	case kindHeartbeat:
		if len(payload) != 8 {
			return frame{}, fmt.Errorf("repl: heartbeat payload is %d bytes, want 8", len(payload))
		}
		return frame{Kind: kindHeartbeat, Head: binary.LittleEndian.Uint64(payload)}, nil
	default:
		return frame{}, fmt.Errorf("repl: unknown frame kind %d", kind)
	}
}
