package repl

import (
	"archive/tar"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/substrate"
)

// BootstrapResult describes what a pre-flight bootstrap did.
type BootstrapResult struct {
	// Fetched reports whether a checkpoint was downloaded; false means
	// local state already reached the primary's checkpoint horizon (or
	// the primary has no checkpoint) and the WAL stream alone suffices.
	Fetched bool
	// Epoch is the fetched checkpoint's epoch (0 when not fetched).
	Epoch uint64
}

// FetchInfo retrieves a node's /v1/repl/info.
func FetchInfo(ctx context.Context, client *http.Client, base string) (InfoResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/repl/info", nil)
	if err != nil {
		return InfoResponse{}, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return InfoResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return InfoResponse{}, fmt.Errorf("repl: %s/v1/repl/info: %s", base, resp.Status)
	}
	var info InfoResponse
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return InfoResponse{}, fmt.Errorf("repl: decoding repl info: %w", err)
	}
	return info, nil
}

// BootstrapIfBehind is the replica pre-flight for one source, run
// BEFORE the local substrate is built: when the primary's newest
// checkpoint is past everything persisted locally, the WAL stream can
// no longer bridge the gap (the primary truncated it at the checkpoint
// epoch), so the checkpoint tarball is fetched and unpacked into
// dataDir where the normal boot recovery will find, validate and load
// it. Recovery then resumes at the checkpoint epoch and the stream
// takes over from there.
//
// dataDir is the per-source directory (Durability.Dir/<source>). The
// unpack is atomic: the archive lands in a temp directory first and is
// renamed into place only when complete, so a half-fetched checkpoint
// can never shadow good local state.
func BootstrapIfBehind(ctx context.Context, client *http.Client, primary, source, dataDir string) (BootstrapResult, error) {
	info, err := FetchInfo(ctx, client, primary)
	if err != nil {
		return BootstrapResult{}, err
	}
	si, ok := info.Sources[source]
	if !ok {
		return BootstrapResult{}, fmt.Errorf("repl: primary %s serves no source %q", primary, source)
	}
	local, err := substrate.MaxPersistedEpoch(dataDir)
	if err != nil {
		return BootstrapResult{}, err
	}
	if si.CheckpointEpoch == 0 || si.CheckpointEpoch <= local {
		return BootstrapResult{}, nil
	}

	u := primary + "/v1/repl/bootstrap?source=" + url.QueryEscape(source)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return BootstrapResult{}, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return BootstrapResult{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		// The checkpoint vanished between info and fetch (possible only
		// with manual deletion); stream from local state and let the
		// stream's own 410 handling surface any gap.
		return BootstrapResult{}, nil
	}
	if resp.StatusCode != http.StatusOK {
		return BootstrapResult{}, fmt.Errorf("repl: bootstrap %s: %s", u, resp.Status)
	}
	dir, epoch, err := unpackCheckpoint(resp.Body, dataDir)
	if err != nil {
		return BootstrapResult{}, err
	}
	_ = dir
	return BootstrapResult{Fetched: true, Epoch: epoch}, nil
}

// unpackCheckpoint unpacks a packCheckpoint archive into dataDir,
// returning the final checkpoint directory and its epoch. All entries
// must live under one checkpoint-<epoch>/ root; path traversal is
// rejected.
func unpackCheckpoint(r io.Reader, dataDir string) (string, uint64, error) {
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		return "", 0, err
	}
	tmp, err := os.MkdirTemp(dataDir, ".bootstrap-*")
	if err != nil {
		return "", 0, err
	}
	defer os.RemoveAll(tmp)

	var root string
	var epoch uint64
	tr := tar.NewReader(r)
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return "", 0, fmt.Errorf("repl: reading bootstrap archive: %w", err)
		}
		name := filepath.Clean(hdr.Name)
		if filepath.IsAbs(name) || strings.HasPrefix(name, "..") {
			return "", 0, fmt.Errorf("repl: bootstrap archive entry escapes the data dir: %q", hdr.Name)
		}
		parts := strings.SplitN(name, string(filepath.Separator), 2)
		if len(parts) != 2 {
			return "", 0, fmt.Errorf("repl: bootstrap archive entry outside a checkpoint dir: %q", hdr.Name)
		}
		ep, ok := substrate.ParseCheckpointDir(parts[0])
		if !ok {
			return "", 0, fmt.Errorf("repl: bootstrap archive root %q is not a checkpoint dir", parts[0])
		}
		if root == "" {
			root, epoch = parts[0], ep
		} else if parts[0] != root {
			return "", 0, fmt.Errorf("repl: bootstrap archive holds multiple roots (%q, %q)", root, parts[0])
		}
		if hdr.Typeflag != tar.TypeReg {
			continue
		}
		if err := os.MkdirAll(filepath.Join(tmp, root), 0o755); err != nil {
			return "", 0, err
		}
		f, err := os.OpenFile(filepath.Join(tmp, name), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
		if err != nil {
			return "", 0, err
		}
		// The frame-level stream CRC does not apply here; the checkpoint's
		// own manifest hashes are re-verified by recovery's validation.
		if _, err := io.Copy(f, tr); err != nil {
			f.Close()
			return "", 0, fmt.Errorf("repl: unpacking %s: %w", name, err)
		}
		if err := f.Close(); err != nil {
			return "", 0, err
		}
	}
	if root == "" {
		return "", 0, fmt.Errorf("repl: bootstrap archive was empty")
	}
	final := filepath.Join(dataDir, root)
	// A pre-existing directory under the same name would have made
	// MaxPersistedEpoch skip the fetch, so anything here is leftover
	// debris from an interrupted earlier attempt.
	if err := os.RemoveAll(final); err != nil {
		return "", 0, err
	}
	if err := os.Rename(filepath.Join(tmp, root), final); err != nil {
		return "", 0, err
	}
	return final, epoch, nil
}
