package repl

import (
	"archive/tar"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"time"
)

// Source serves a durable pgakvd's replication endpoints: metadata for
// joining replicas and the router, a checkpoint tarball for bootstrap,
// and the live WAL stream. It is mounted on any durable server — a
// replica serves them too (its own WAL mirrors the primary's), which
// lets the router probe every node uniformly.
//
//	GET /v1/repl/info                     epochs + checkpoint horizons per source
//	GET /v1/repl/bootstrap?source=S       tar of S's newest checkpoint dir
//	GET /v1/repl/stream?source=S&from=N   chunked frame stream of records with epoch > N
type Source struct {
	managers map[string]Manager
	replica  bool
	// heartbeatEvery paces keep-alive frames on idle streams; replicas
	// use them for lag and liveness.
	heartbeatEvery time.Duration
}

// Manager is the slice of substrate.Manager the replication source
// needs; the indirection keeps source.go testable with fakes.
type Manager interface {
	Epoch() uint64
	LastCheckpointEpoch() uint64
	NewestCheckpoint() (path string, epoch uint64, ok bool)
	RecordsSince(from uint64) ([]WALRecord, error)
	SubscribeWAL(buf int) (*WALSub, func())
}

// NewSource wraps the given managers, keyed by KG source label
// ("wikidata", "freebase"). replica marks the info response so a router
// can tell what it is probing.
func NewSource(managers map[string]Manager, replica bool) *Source {
	return &Source{managers: managers, replica: replica, heartbeatEvery: time.Second}
}

// Mount registers the replication routes on mux.
func (s *Source) Mount(mux *http.ServeMux) {
	mux.HandleFunc("GET /v1/repl/info", s.handleInfo)
	mux.HandleFunc("GET /v1/repl/bootstrap", s.handleBootstrap)
	mux.HandleFunc("GET /v1/repl/stream", s.handleStream)
}

// InfoResponse is the /v1/repl/info body.
type InfoResponse struct {
	// Replica marks a node that itself applies a primary's WAL.
	Replica bool `json:"replica"`
	// Sources maps KG source labels to their replication positions.
	Sources map[string]SourceInfo `json:"sources"`
}

// SourceInfo is one source's replication position.
type SourceInfo struct {
	// Epoch is the currently served snapshot epoch.
	Epoch uint64 `json:"epoch"`
	// CheckpointEpoch is the newest checkpoint's epoch (0 = none): the
	// oldest position a replica can stream from without bootstrapping.
	CheckpointEpoch uint64 `json:"checkpoint_epoch"`
}

func (s *Source) handleInfo(w http.ResponseWriter, r *http.Request) {
	resp := InfoResponse{Replica: s.replica, Sources: make(map[string]SourceInfo, len(s.managers))}
	for name, mgr := range s.managers {
		resp.Sources[name] = SourceInfo{Epoch: mgr.Epoch(), CheckpointEpoch: mgr.LastCheckpointEpoch()}
	}
	writeJSON(w, http.StatusOK, resp)
}

// manager resolves the ?source= query parameter, writing the error
// response itself on failure.
func (s *Source) manager(w http.ResponseWriter, r *http.Request) (Manager, bool) {
	name := r.URL.Query().Get("source")
	mgr, ok := s.managers[name]
	if !ok {
		writeJSON(w, http.StatusNotFound, replError{Error: fmt.Sprintf("unknown source %q", name)})
		return nil, false
	}
	return mgr, true
}

// handleBootstrap streams the newest checkpoint directory as a tar
// archive (entries named <dir>/<file>). 404 when no checkpoint exists
// yet — the joining replica then has nothing to bootstrap and streams
// the WAL from its local position instead. The directory is immutable
// once named (newer checkpoints land under new names), so the walk
// never races a writer.
func (s *Source) handleBootstrap(w http.ResponseWriter, r *http.Request) {
	mgr, ok := s.manager(w, r)
	if !ok {
		return
	}
	path, epoch, ok := mgr.NewestCheckpoint()
	if !ok {
		writeJSON(w, http.StatusNotFound, replError{Error: "no checkpoint exists yet; stream the wal from epoch 0 instead"})
		return
	}
	w.Header().Set("Content-Type", "application/x-tar")
	w.Header().Set("X-Checkpoint-Epoch", strconv.FormatUint(epoch, 10))
	w.WriteHeader(http.StatusOK)
	if err := packCheckpoint(w, path); err != nil {
		// Headers are gone; the truncated tar fails the client's unpack,
		// which is the correct outcome for a half-shipped checkpoint.
		return
	}
}

// packCheckpoint writes dir as a tar stream whose entries are rooted at
// the directory's base name, so unpacking recreates checkpoint-<epoch>/
// under the replica's data dir.
func packCheckpoint(w io.Writer, dir string) error {
	tw := tar.NewWriter(w)
	base := filepath.Base(dir)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue // checkpoints are flat
		}
		info, err := e.Info()
		if err != nil {
			return err
		}
		hdr, err := tar.FileInfoHeader(info, "")
		if err != nil {
			return err
		}
		hdr.Name = base + "/" + e.Name()
		if err := tw.WriteHeader(hdr); err != nil {
			return err
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			return err
		}
		_, err = io.Copy(tw, f)
		f.Close()
		if err != nil {
			return err
		}
	}
	return tw.Close()
}

// handleStream serves the record chain with epoch > from as a chunked
// frame stream: first the on-disk tail, then live appends as they
// happen, with heartbeats carrying the head epoch while idle. The
// subscription is registered BEFORE the on-disk read and deduplicated
// by epoch, so no record can fall between the tail and the live feed.
//
// 410 Gone means the WAL no longer reaches back to from (a checkpoint
// truncated it): the replica must bootstrap from the checkpoint and
// reconnect from its epoch.
func (s *Source) handleStream(w http.ResponseWriter, r *http.Request) {
	mgr, ok := s.manager(w, r)
	if !ok {
		return
	}
	from := uint64(0)
	if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, replError{Error: fmt.Sprintf("invalid from %q", v)})
			return
		}
		from = n
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, replError{Error: "streaming unsupported by this connection"})
		return
	}

	sub, cancel := mgr.SubscribeWAL(1024)
	defer cancel()
	recs, err := mgr.RecordsSince(from)
	if errors.Is(err, ErrTruncatedHistory) {
		writeJSON(w, http.StatusGone, replError{Error: err.Error()})
		return
	}
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, replError{Error: err.Error()})
		return
	}

	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	sw := newStreamWriter(w)
	if err := sw.writeMagic(); err != nil {
		return
	}
	last := from
	for _, rec := range recs {
		if err := sw.writeRecord(rec); err != nil {
			return
		}
		last = rec.Epoch
	}
	// First heartbeat tells the replica the head immediately, so lag is
	// observable before any record flows.
	if err := sw.writeHeartbeat(mgr.Epoch()); err != nil {
		return
	}
	flusher.Flush()

	beat := time.NewTicker(s.heartbeatEvery)
	defer beat.Stop()
	for {
		select {
		case rec, ok := <-sub.C:
			if !ok {
				// Dropped for lagging (or manager shutdown): end the stream;
				// the replica reconnects and re-reads the on-disk tail.
				return
			}
			if rec.Epoch <= last {
				continue // already served from the on-disk tail
			}
			if rec.Epoch != last+1 {
				// A record fell between the tail read and the subscription
				// feed — impossible by construction, but never ship a gap.
				return
			}
			if err := sw.writeRecord(rec); err != nil {
				return
			}
			last = rec.Epoch
			flusher.Flush()
		case <-beat.C:
			if err := sw.writeHeartbeat(mgr.Epoch()); err != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// replError is the JSON error body of the replication endpoints.
type replError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
