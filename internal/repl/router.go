package repl

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httputil"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// RouterConfig configures the read load-balancer.
type RouterConfig struct {
	// Primary is the single write home; ingests, snapshots and prompt
	// reloads always forward here, and reads fall back to it when no
	// replica qualifies.
	Primary string
	// Replicas are the read nodes.
	Replicas []string
	// MaxLag is the health threshold in records (= epochs): a replica
	// whose worst-source lag behind the primary exceeds it stops taking
	// reads until it catches up. Default 64.
	MaxLag uint64
	// ProbeInterval paces the health/epoch probes. Default 500ms.
	ProbeInterval time.Duration
	// Client issues probes; nil uses a 2s-timeout client.
	Client *http.Client
}

// node is one routed backend and the router's latest view of it.
type node struct {
	url   string
	proxy *httputil.ReverseProxy

	mu      sync.Mutex
	healthy bool
	lastErr string
	// epochs per source are monotone maxima of everything ever probed:
	// a node's real epoch only grows, so the cached value is a LOWER
	// bound on the truth — exactly the safe direction for X-Min-Epoch
	// routing (we may under-route to a qualified node, never route a
	// min-epoch read to an unqualified one).
	epochs map[string]uint64
}

func (n *node) snapshotEpochs() map[string]uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[string]uint64, len(n.epochs))
	for k, v := range n.epochs {
		out[k] = v
	}
	return out
}

// Router is the pgakvlb core: an http.Handler that splits traffic
// between the primary and its replicas.
//
// Routing policy:
//   - Writes (/v1/ingest, /v1/snapshot/*, /v1/prompts/reload) and
//     anything unrecognized go to the primary.
//   - Reads (/v1/answer, /v1/batch, /v1/methods, /v1/metrics of the
//     backing node? no — reads are the answer-path routes; see
//     readPaths) round-robin across healthy replicas within MaxLag.
//   - X-Min-Epoch: N routes only to replicas whose cached epoch for
//     EVERY source is >= N, else falls back to the primary, which is
//     always current. Responses carry X-Served-By: the chosen node.
//
// The router's own endpoints:
//
//	GET /healthz        router liveness
//	GET /v1/lb/status   node table, routed-read counters
type Router struct {
	cfg      RouterConfig
	primary  *node
	replicas []*node
	rr       atomic.Uint64

	readsRouted     sync.Map // node url -> *atomic.Uint64
	primaryFallback atomic.Uint64
	minEpochReads   atomic.Uint64

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// NewRouter builds the router and starts its probe loop.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if cfg.Primary == "" {
		return nil, fmt.Errorf("repl: router needs a primary")
	}
	if cfg.MaxLag == 0 {
		cfg.MaxLag = 64
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 500 * time.Millisecond
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 2 * time.Second}
	}
	r := &Router{cfg: cfg, stop: make(chan struct{}), done: make(chan struct{})}
	var err error
	if r.primary, err = newNode(cfg.Primary); err != nil {
		return nil, err
	}
	for _, u := range cfg.Replicas {
		n, err := newNode(u)
		if err != nil {
			return nil, err
		}
		r.replicas = append(r.replicas, n)
	}
	r.probeAll()
	go r.probeLoop()
	return r, nil
}

func newNode(base string) (*node, error) {
	target, err := url.Parse(base)
	if err != nil || target.Scheme == "" || target.Host == "" {
		return nil, fmt.Errorf("repl: invalid node url %q", base)
	}
	n := &node{url: base, epochs: map[string]uint64{}}
	proxy := httputil.NewSingleHostReverseProxy(target)
	proxy.ModifyResponse = func(resp *http.Response) error {
		resp.Header.Set("X-Served-By", base)
		return nil
	}
	proxy.ErrorHandler = func(w http.ResponseWriter, req *http.Request, err error) {
		n.mu.Lock()
		n.healthy = false
		n.lastErr = err.Error()
		n.mu.Unlock()
		writeJSON(w, http.StatusBadGateway, replError{Error: fmt.Sprintf("node %s: %v", base, err)})
	}
	n.proxy = proxy
	return n, nil
}

// Close stops the probe loop.
func (r *Router) Close() {
	r.stopOnce.Do(func() { close(r.stop) })
	<-r.done
}

func (r *Router) probeLoop() {
	defer close(r.done)
	t := time.NewTicker(r.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			r.probeAll()
		case <-r.stop:
			return
		}
	}
}

// probeAll refreshes every node concurrently within one interval.
func (r *Router) probeAll() {
	var wg sync.WaitGroup
	for _, n := range append([]*node{r.primary}, r.replicas...) {
		wg.Add(1)
		go func(n *node) {
			defer wg.Done()
			r.probeNode(n)
		}(n)
	}
	wg.Wait()
}

// probeNode checks liveness (/healthz) and refreshes the node's epochs
// (/v1/repl/info). Lag-based health is evaluated at routing time
// against the primary's freshest epochs, not here, so one probe's
// ordering can't mark a caught-up node laggy.
func (r *Router) probeNode(n *node) {
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.Client.Timeout+time.Second)
	defer cancel()
	fail := func(err error) {
		n.mu.Lock()
		n.healthy = false
		n.lastErr = err.Error()
		n.mu.Unlock()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.url+"/healthz", nil)
	if err != nil {
		fail(err)
		return
	}
	resp, err := r.cfg.Client.Do(req)
	if err != nil {
		fail(err)
		return
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fail(fmt.Errorf("healthz: %s", resp.Status))
		return
	}
	info, err := FetchInfo(ctx, r.cfg.Client, n.url)
	if err != nil {
		fail(err)
		return
	}
	n.mu.Lock()
	n.healthy = true
	n.lastErr = ""
	for src, si := range info.Sources {
		if si.Epoch > n.epochs[src] {
			n.epochs[src] = si.Epoch
		}
	}
	n.mu.Unlock()
}

// qualifies reports whether a replica may take a read: healthy, within
// MaxLag of the primary on every source, and (when minEpoch > 0) at or
// past minEpoch on every source.
func (r *Router) qualifies(n *node, primaryEpochs map[string]uint64, minEpoch uint64) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.healthy {
		return false
	}
	for src, pe := range primaryEpochs {
		ne := n.epochs[src]
		// ne is a lower bound on the node's real epoch, pe a lower bound
		// on the primary's: lag computed from them can over- OR
		// under-estimate, but MaxLag is a health heuristic; the hard
		// consistency guarantee is minEpoch, which only ever compares the
		// node's lower bound against the client's requirement.
		if pe > ne && pe-ne > r.cfg.MaxLag {
			return false
		}
		if minEpoch > 0 && ne < minEpoch {
			return false
		}
	}
	return true
}

// pickReplica returns the next qualifying replica, nil when none.
func (r *Router) pickReplica(minEpoch uint64) *node {
	if len(r.replicas) == 0 {
		return nil
	}
	primaryEpochs := r.primary.snapshotEpochs()
	start := int(r.rr.Add(1))
	for i := 0; i < len(r.replicas); i++ {
		n := r.replicas[(start+i)%len(r.replicas)]
		if r.qualifies(n, primaryEpochs, minEpoch) {
			return n
		}
	}
	return nil
}

// readPath reports whether a request may be served by a replica.
// Everything else — writes, admin, unknown paths — goes to the primary,
// which is always correct, just not horizontally scaled.
func readPath(req *http.Request) bool {
	p := req.URL.Path
	switch {
	case p == "/v1/answer" || p == "/v1/batch":
		return true
	case p == "/v1/methods" || p == "/v1/prompts":
		return true
	case strings.HasPrefix(p, "/v1/traces"):
		return true
	default:
		return false
	}
}

func (r *Router) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	switch req.URL.Path {
	case "/healthz":
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "role": "router"})
		return
	case "/v1/lb/status":
		writeJSON(w, http.StatusOK, r.Status())
		return
	}
	if !readPath(req) {
		r.forward(w, req, r.primary)
		return
	}
	minEpoch, err := ParseMinEpoch(req.Header.Get("X-Min-Epoch"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, replError{Error: err.Error()})
		return
	}
	if minEpoch > 0 {
		r.minEpochReads.Add(1)
	}
	n := r.pickReplica(minEpoch)
	if n == nil {
		// No qualifying replica (all lagged, down, or below the client's
		// min epoch): the primary serves the read itself. This is the
		// "wait-or-primary" arm of read-your-writes — the primary's epoch
		// is by definition current, so the guarantee holds trivially.
		r.primaryFallback.Add(1)
		r.forward(w, req, r.primary)
		return
	}
	r.forward(w, req, n)
}

func (r *Router) forward(w http.ResponseWriter, req *http.Request, n *node) {
	c, _ := r.readsRouted.LoadOrStore(n.url, new(atomic.Uint64))
	c.(*atomic.Uint64).Add(1)
	n.proxy.ServeHTTP(w, req)
}

// NodeStatus is one node's row in /v1/lb/status.
type NodeStatus struct {
	URL       string            `json:"url"`
	Role      string            `json:"role"`
	Healthy   bool              `json:"healthy"`
	Epochs    map[string]uint64 `json:"epochs"`
	LagByKG   map[string]uint64 `json:"lag_by_kg,omitempty"`
	LastError string            `json:"last_error,omitempty"`
	Requests  uint64            `json:"requests_routed"`
}

// StatusResponse is the /v1/lb/status body.
type StatusResponse struct {
	Primary  NodeStatus   `json:"primary"`
	Replicas []NodeStatus `json:"replicas"`
	// PrimaryFallbacks counts reads the primary served because no
	// replica qualified; MinEpochReads counts reads carrying an
	// X-Min-Epoch requirement.
	PrimaryFallbacks uint64 `json:"primary_fallbacks"`
	MinEpochReads    uint64 `json:"min_epoch_reads"`
	MaxLag           uint64 `json:"max_lag"`
}

// Status snapshots the node table.
func (r *Router) Status() StatusResponse {
	primaryEpochs := r.primary.snapshotEpochs()
	status := func(n *node, role string) NodeStatus {
		n.mu.Lock()
		defer n.mu.Unlock()
		s := NodeStatus{URL: n.url, Role: role, Healthy: n.healthy, LastError: n.lastErr, Epochs: map[string]uint64{}}
		for k, v := range n.epochs {
			s.Epochs[k] = v
		}
		if role == "replica" {
			s.LagByKG = map[string]uint64{}
			for src, pe := range primaryEpochs {
				if ne := n.epochs[src]; pe > ne {
					s.LagByKG[src] = pe - ne
				} else {
					s.LagByKG[src] = 0
				}
			}
		}
		if c, ok := r.readsRouted.Load(n.url); ok {
			s.Requests = c.(*atomic.Uint64).Load()
		}
		return s
	}
	resp := StatusResponse{
		Primary:          status(r.primary, "primary"),
		PrimaryFallbacks: r.primaryFallback.Load(),
		MinEpochReads:    r.minEpochReads.Load(),
		MaxLag:           r.cfg.MaxLag,
	}
	for _, n := range r.replicas {
		resp.Replicas = append(resp.Replicas, status(n, "replica"))
	}
	return resp
}
