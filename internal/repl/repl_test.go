package repl

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/embed"
	"repro/internal/kg"
	"repro/internal/substrate"
)

// seedStore builds the deterministic seed both ends boot from — the
// same role bench environments play for the real binaries.
func seedStore(n int) *kg.Store {
	st := kg.NewStore(kg.SourceWikidata)
	for i := 0; i < n; i++ {
		st.Add(kg.Triple{
			Subject:  fmt.Sprintf("Entity %d", i),
			Relation: "related to",
			Object:   fmt.Sprintf("Entity %d", (i+1)%n),
		})
	}
	st.Freeze()
	return st
}

const seedTriples = 20

func managerConfig(dir string, replica bool, compactThreshold int) substrate.Config {
	return substrate.Config{
		ShardSize:        16,
		Replica:          replica,
		CompactThreshold: compactThreshold,
		Durability:       substrate.Durability{Dir: dir, Fsync: substrate.SyncAlways},
	}
}

func newNodeManager(t *testing.T, dir string, replica bool, compactThreshold int) *substrate.Manager {
	t.Helper()
	m, err := substrate.Recover(embed.NewEncoder(), seedStore(seedTriples), managerConfig(dir, replica, compactThreshold))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// serveSource exposes mgr's replication endpoints on a test server with
// a fast heartbeat.
func serveSource(t *testing.T, mgr *substrate.Manager) *httptest.Server {
	t.Helper()
	src := NewSource(map[string]Manager{"wikidata": mgr}, mgr.Replica())
	src.heartbeatEvery = 20 * time.Millisecond
	mux := http.NewServeMux()
	src.Mount(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func startApplier(t *testing.T, primaryURL string, mgr *substrate.Manager) (*Applier, context.CancelFunc) {
	t.Helper()
	a, err := NewApplier(ApplierConfig{
		Primary: primaryURL,
		Source:  "wikidata",
		Manager: mgr,
		Backoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); a.Run(ctx) }()
	t.Cleanup(func() { cancel(); <-done })
	return a, cancel
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// assertSameContent requires both managers to serve the same epoch and
// the IDENTICAL triple sequence — order included, because triple IDs
// (and with them retrieval tie-breaks and answer bytes) are positional.
func assertSameContent(t *testing.T, primary, replica *substrate.Manager) {
	t.Helper()
	ps, rs := primary.Current(), replica.Current()
	if ps.Epoch != rs.Epoch {
		t.Fatalf("epochs diverge: primary %d, replica %d", ps.Epoch, rs.Epoch)
	}
	pAll, rAll := ps.Store.All(), rs.Store.All()
	if len(pAll) != len(rAll) {
		t.Fatalf("triple counts diverge at epoch %d: primary %d, replica %d", ps.Epoch, len(pAll), len(rAll))
	}
	for i := range pAll {
		if pAll[i] != rAll[i] {
			t.Fatalf("triple %d diverges at epoch %d: primary %v, replica %v", i, ps.Epoch, pAll[i], rAll[i])
		}
	}
}

func ingestN(t *testing.T, m *substrate.Manager, n int, tag string) {
	t.Helper()
	for i := 0; i < n; i++ {
		_, err := m.Ingest([]kg.Triple{{
			Subject:  fmt.Sprintf("Ingested %s %d", tag, i),
			Relation: "discovered in",
			Object:   fmt.Sprintf("Expedition %s-%d", tag, i),
		}})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestWireRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sw := newStreamWriter(&buf)
	if err := sw.writeMagic(); err != nil {
		t.Fatal(err)
	}
	rec := WALRecord{Epoch: 7, Triples: []kg.Triple{
		{Subject: "a", Relation: "b", Object: "c"},
		{Subject: "d", Relation: "e", Object: "f", Ord: 2},
	}}
	if err := sw.writeRecord(rec); err != nil {
		t.Fatal(err)
	}
	if err := sw.writeHeartbeat(42); err != nil {
		t.Fatal(err)
	}
	if err := sw.writeRecord(WALRecord{Epoch: 8}); err != nil { // epoch marker
		t.Fatal(err)
	}

	sr := newStreamReader(bytes.NewReader(buf.Bytes()))
	if err := sr.readMagic(); err != nil {
		t.Fatal(err)
	}
	fr, err := sr.next()
	if err != nil || fr.Kind != kindRecord {
		t.Fatalf("frame 1: %+v, %v", fr, err)
	}
	if fr.Record.Epoch != 7 || len(fr.Record.Triples) != 2 || fr.Record.Triples[1].Ord != 2 {
		t.Fatalf("record round-trip mangled: %+v", fr.Record)
	}
	fr, err = sr.next()
	if err != nil || fr.Kind != kindHeartbeat || fr.Head != 42 {
		t.Fatalf("frame 2: %+v, %v", fr, err)
	}
	fr, err = sr.next()
	if err != nil || fr.Record.Epoch != 8 || len(fr.Record.Triples) != 0 {
		t.Fatalf("frame 3: %+v, %v", fr, err)
	}
	if _, err := sr.next(); err != io.EOF {
		t.Fatalf("expected clean EOF, got %v", err)
	}
}

func TestWireRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	sw := newStreamWriter(&buf)
	_ = sw.writeMagic()
	_ = sw.writeRecord(WALRecord{Epoch: 3, Triples: []kg.Triple{{Subject: "a", Relation: "b", Object: "c"}}})
	raw := buf.Bytes()
	raw[len(raw)-1] ^= 0xff // flip a payload byte

	sr := newStreamReader(bytes.NewReader(raw))
	if err := sr.readMagic(); err != nil {
		t.Fatal(err)
	}
	if _, err := sr.next(); err == nil {
		t.Fatal("corrupted frame passed its checksum")
	}
}

// TestStreamApply is the basic tentpole path: a replica streams the
// primary's ingests and converges to identical content at identical
// epochs.
func TestStreamApply(t *testing.T) {
	dir := t.TempDir()
	primary := newNodeManager(t, filepath.Join(dir, "p"), false, 0)
	defer primary.Close()
	srv := serveSource(t, primary)
	replica := newNodeManager(t, filepath.Join(dir, "r"), true, 0)
	defer replica.Close()

	a, _ := startApplier(t, srv.URL, replica)
	ingestN(t, primary, 5, "basic")
	waitFor(t, 5*time.Second, "replica catch-up", func() bool { return replica.Epoch() == primary.Epoch() })
	assertSameContent(t, primary, replica)

	st := a.Stats()
	if st.RecordsApplied != 5 {
		t.Fatalf("applied %d records, want 5", st.RecordsApplied)
	}
	if st.LagRecords != 0 {
		t.Fatalf("lag %d after catch-up, want 0", st.LagRecords)
	}
	if !st.Connected {
		t.Fatal("applier reports disconnected while streaming")
	}
}

// TestReplicaRejectsLocalIngest: the replica has exactly one writer —
// the shipped WAL.
func TestReplicaRejectsLocalIngest(t *testing.T) {
	replica := newNodeManager(t, t.TempDir(), true, 0)
	defer replica.Close()
	if _, err := replica.Ingest([]kg.Triple{{Subject: "a", Relation: "b", Object: "c"}}); err == nil {
		t.Fatal("local ingest on a replica succeeded")
	}
}

// TestApplierResumesByEpoch: an applier stopped mid-history and
// restarted resumes from exactly the local epoch — nothing re-applied,
// nothing skipped.
func TestApplierResumesByEpoch(t *testing.T) {
	dir := t.TempDir()
	primary := newNodeManager(t, filepath.Join(dir, "p"), false, 0)
	defer primary.Close()
	srv := serveSource(t, primary)
	replica := newNodeManager(t, filepath.Join(dir, "r"), true, 0)
	defer replica.Close()

	_, cancel := startApplier(t, srv.URL, replica)
	ingestN(t, primary, 4, "phase1")
	waitFor(t, 5*time.Second, "phase 1 catch-up", func() bool { return replica.Epoch() == primary.Epoch() })
	cancel() // replica goes dark

	ingestN(t, primary, 6, "phase2")
	a2, _ := startApplier(t, srv.URL, replica)
	waitFor(t, 5*time.Second, "phase 2 catch-up", func() bool { return replica.Epoch() == primary.Epoch() })
	assertSameContent(t, primary, replica)
	st := a2.Stats()
	if st.RecordsApplied != 6 {
		t.Fatalf("resumed applier applied %d records, want exactly the 6 missed", st.RecordsApplied)
	}
	if st.RecordsSkipped != 0 {
		t.Fatalf("resumed applier skipped %d records, want 0 (resume is by exact epoch)", st.RecordsSkipped)
	}
}

// TestBootstrapFromCheckpoint: when the primary has checkpointed past a
// joining replica's state, the WAL alone cannot bridge the gap — the
// stream must 410 and the pre-flight bootstrap must fetch the
// checkpoint, after which recovery + the stream tail converge.
func TestBootstrapFromCheckpoint(t *testing.T) {
	dir := t.TempDir()
	primary := newNodeManager(t, filepath.Join(dir, "p"), false, 0)
	defer primary.Close()
	srv := serveSource(t, primary)

	ingestN(t, primary, 8, "history")
	if _, err := primary.Checkpoint(context.Background()); err != nil {
		t.Fatal(err)
	}
	ingestN(t, primary, 3, "tail")

	// A fresh replica that skips the bootstrap must be refused with 410:
	// serving it records from its epoch would silently gap the chain.
	replicaDir := filepath.Join(dir, "r", "wikidata")
	noBoot := newNodeManager(t, filepath.Join(dir, "nb"), true, 0)
	defer noBoot.Close()
	aNB, cancelNB := startApplier(t, srv.URL, noBoot)
	waitFor(t, 5*time.Second, "410 from the primary", func() bool { return aNB.Stats().TruncatedSignals > 0 })
	cancelNB()
	if got := noBoot.Epoch(); got != 1 {
		t.Fatalf("un-bootstrapped replica advanced to epoch %d, want to stay at 1", got)
	}

	// The real path: pre-flight bootstrap, then recovery, then stream.
	res, err := BootstrapIfBehind(context.Background(), srv.Client(), srv.URL, "wikidata", replicaDir)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fetched {
		t.Fatal("bootstrap did not fetch despite the primary's checkpoint horizon")
	}
	if res.Epoch != primary.LastCheckpointEpoch() {
		t.Fatalf("bootstrapped checkpoint epoch %d, want %d", res.Epoch, primary.LastCheckpointEpoch())
	}
	replica, err := substrate.Recover(embed.NewEncoder(), seedStore(seedTriples), managerConfig(filepath.Join(dir, "r"), true, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer replica.Close()
	if got := replica.Epoch(); got != res.Epoch {
		t.Fatalf("replica recovered at epoch %d, want the checkpoint epoch %d", got, res.Epoch)
	}
	a, _ := startApplier(t, srv.URL, replica)
	waitFor(t, 5*time.Second, "post-bootstrap catch-up", func() bool { return replica.Epoch() == primary.Epoch() })
	assertSameContent(t, primary, replica)
	if st := a.Stats(); st.RecordsApplied != 3 {
		t.Fatalf("applied %d tail records after bootstrap, want 3", st.RecordsApplied)
	}

	// Re-running the pre-flight is a no-op once local state is current.
	res, err = BootstrapIfBehind(context.Background(), srv.Client(), srv.URL, "wikidata", replicaDir)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fetched {
		t.Fatal("bootstrap re-fetched a checkpoint local state already covers")
	}
}

// TestEpochNeverRegressesAcrossReplicaRestart: a replica restart resumes
// at exactly the last applied epoch and the chain continues without
// duplicates or gaps.
func TestEpochNeverRegressesAcrossReplicaRestart(t *testing.T) {
	dir := t.TempDir()
	primary := newNodeManager(t, filepath.Join(dir, "p"), false, 0)
	defer primary.Close()
	srv := serveSource(t, primary)
	replica := newNodeManager(t, filepath.Join(dir, "r"), true, 0)

	_, cancel := startApplier(t, srv.URL, replica)
	ingestN(t, primary, 5, "before")
	waitFor(t, 5*time.Second, "pre-restart catch-up", func() bool { return replica.Epoch() == primary.Epoch() })
	preEpoch := replica.Epoch()
	cancel()
	if err := replica.Close(); err != nil {
		t.Fatal(err)
	}

	replica2, err := substrate.Recover(embed.NewEncoder(), seedStore(seedTriples), managerConfig(filepath.Join(dir, "r"), true, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer replica2.Close()
	if got := replica2.Epoch(); got != preEpoch {
		t.Fatalf("replica restarted at epoch %d, want exactly %d (no bump, no regression)", got, preEpoch)
	}
	ingestN(t, primary, 4, "after")
	a2, _ := startApplier(t, srv.URL, replica2)
	waitFor(t, 5*time.Second, "post-restart catch-up", func() bool { return replica2.Epoch() == primary.Epoch() })
	assertSameContent(t, primary, replica2)
	if st := a2.Stats(); st.RecordsSkipped != 0 {
		t.Fatalf("restarted applier skipped %d records, want 0", st.RecordsSkipped)
	}
}

// TestApplierHammer is the race-detector workout: concurrent primary
// ingests (with auto-compaction shipping epoch markers), concurrent
// replica reads, and concurrent replica checkpoints, all while the
// stream applies. At quiesce the books must balance: every epoch the
// primary advanced was shipped and applied exactly once.
func TestApplierHammer(t *testing.T) {
	dir := t.TempDir()
	// Auto-compaction on both ends: the primary's compactions ship
	// zero-triple markers; the replica's are epoch-frozen folds.
	primary := newNodeManager(t, filepath.Join(dir, "p"), false, 48)
	defer primary.Close()
	srv := serveSource(t, primary)
	replica := newNodeManager(t, filepath.Join(dir, "r"), true, 48)
	defer replica.Close()

	a, _ := startApplier(t, srv.URL, replica)
	startEpoch := replica.Epoch()

	const writers, perWriter = 4, 30
	var wg, readerWg sync.WaitGroup
	stopReads := make(chan struct{})
	// Concurrent reads resolve snapshots and scan them while swaps land.
	// They outlive the writers (stopped only after catch-up), so they
	// track their own wait group.
	for i := 0; i < 2; i++ {
		readerWg.Add(1)
		go func() {
			defer readerWg.Done()
			for {
				select {
				case <-stopReads:
					return
				default:
				}
				snap := replica.Current()
				if n := len(snap.Store.All()); n < seedTriples {
					t.Errorf("replica snapshot at epoch %d shrank to %d triples", snap.Epoch, n)
					return
				}
				time.Sleep(time.Millisecond)
			}
		}()
	}
	// Concurrent local checkpoints on the replica.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			_, _ = replica.Checkpoint(context.Background())
			time.Sleep(10 * time.Millisecond)
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ingestN(t, primary, perWriter, fmt.Sprintf("w%d", w))
		}(w)
	}
	// Writers and checkpoints finish before reads stop: reads must
	// observe every interleaving, including post-quiesce.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("hammer did not quiesce")
	}

	// Drain any in-flight auto-compaction, then fold whatever delta is
	// left ourselves: afterwards the primary's epoch is final, so the
	// books below compare stable numbers.
	waitFor(t, 30*time.Second, "primary compaction quiesce", func() bool {
		_, err := primary.Compact(context.Background())
		if err != nil {
			return false
		}
		return primary.Stats().DeltaTriples == 0
	})

	waitFor(t, 30*time.Second, "hammer catch-up", func() bool {
		return replica.Epoch() == primary.Epoch()
	})
	close(stopReads)
	readerWg.Wait()
	assertSameContent(t, primary, replica)

	st := a.Stats()
	shipped := primary.Epoch() - startEpoch
	if got := st.RecordsApplied; got != shipped {
		t.Fatalf("books do not balance: primary advanced %d epochs, replica applied %d records (skipped %d)", shipped, got, st.RecordsSkipped)
	}
	if st.LagRecords != 0 {
		t.Fatalf("lag %d after quiesce", st.LagRecords)
	}
}
