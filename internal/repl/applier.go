package repl

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/substrate"
)

// ApplierConfig configures one source's stream-apply loop.
type ApplierConfig struct {
	// Primary is the primary's base URL (e.g. "http://10.0.0.1:8080").
	Primary string
	// Source is the KG source label this applier replicates.
	Source string
	// Manager is the local replica-mode substrate the records land in.
	Manager *substrate.Manager
	// Client issues the stream requests; nil uses a client with no
	// timeout (streams are long-lived; cancellation comes from Run's
	// context).
	Client *http.Client
	// Backoff / MaxBackoff pace reconnects: the delay starts at Backoff
	// and doubles per consecutive failure up to MaxBackoff, resetting
	// after any successful apply. Defaults: 100ms / 5s.
	Backoff    time.Duration
	MaxBackoff time.Duration
}

// Applier maintains one source's replication stream: connect to the
// primary from the local epoch, apply records in order through
// substrate.ApplyReplicated, reconnect with backoff on any failure.
// All counters are atomics, readable at any time via Stats.
type Applier struct {
	cfg ApplierConfig

	connected       atomic.Bool
	headEpoch       atomic.Uint64
	recordsApplied  atomic.Uint64
	recordsSkipped  atomic.Uint64
	reconnects      atomic.Uint64
	truncatedSignal atomic.Uint64

	mu      sync.Mutex
	lastErr string
}

// NewApplier validates the config and builds the applier.
func NewApplier(cfg ApplierConfig) (*Applier, error) {
	if cfg.Primary == "" || cfg.Source == "" || cfg.Manager == nil {
		return nil, errors.New("repl: applier needs Primary, Source and Manager")
	}
	if !cfg.Manager.Replica() {
		return nil, errors.New("repl: applier manager must be in replica mode")
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 100 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	return &Applier{cfg: cfg}, nil
}

// ApplierStats is a point-in-time snapshot of one applier's books.
type ApplierStats struct {
	Source    string `json:"source"`
	Primary   string `json:"primary"`
	Connected bool   `json:"connected"`
	// AppliedEpoch is the local substrate's epoch — the last record
	// applied (or recovered). HeadEpoch is the primary's last observed
	// head; LagRecords is their distance (every epoch is exactly one
	// record, so epoch lag IS record lag).
	AppliedEpoch uint64 `json:"applied_epoch"`
	HeadEpoch    uint64 `json:"head_epoch"`
	LagRecords   uint64 `json:"lag_records"`
	// RecordsApplied counts records that advanced the chain;
	// RecordsSkipped counts idempotent re-deliveries after resumes.
	RecordsApplied uint64 `json:"records_applied"`
	RecordsSkipped uint64 `json:"records_skipped"`
	// Reconnects counts stream attempts after the first connection.
	Reconnects uint64 `json:"reconnects"`
	// TruncatedSignals counts 410 responses: the primary checkpointed
	// past this replica's epoch while it was away, so catch-up needs a
	// restart (the boot pre-flight bootstraps from the checkpoint).
	TruncatedSignals uint64 `json:"truncated_signals"`
	LastError        string `json:"last_error,omitempty"`
}

// Stats snapshots the applier's counters.
func (a *Applier) Stats() ApplierStats {
	applied := a.cfg.Manager.Epoch()
	head := a.headEpoch.Load()
	var lag uint64
	if head > applied {
		lag = head - applied
	}
	a.mu.Lock()
	lastErr := a.lastErr
	a.mu.Unlock()
	return ApplierStats{
		Source:           a.cfg.Source,
		Primary:          a.cfg.Primary,
		Connected:        a.connected.Load(),
		AppliedEpoch:     applied,
		HeadEpoch:        head,
		LagRecords:       lag,
		RecordsApplied:   a.recordsApplied.Load(),
		RecordsSkipped:   a.recordsSkipped.Load(),
		Reconnects:       a.reconnects.Load(),
		TruncatedSignals: a.truncatedSignal.Load(),
		LastError:        lastErr,
	}
}

func (a *Applier) setErr(err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if err == nil {
		a.lastErr = ""
	} else {
		a.lastErr = err.Error()
	}
}

// bumpHead advances the observed head epoch monotonically.
func (a *Applier) bumpHead(epoch uint64) {
	for {
		cur := a.headEpoch.Load()
		if epoch <= cur || a.headEpoch.CompareAndSwap(cur, epoch) {
			return
		}
	}
}

// errStreamTruncated marks a 410 from the primary.
var errStreamTruncated = errors.New("repl: primary's wal was truncated past our epoch; restart the replica to bootstrap from the checkpoint")

// Run drives the stream-apply loop until ctx is canceled. Blocking;
// callers run it in a goroutine per source.
func (a *Applier) Run(ctx context.Context) {
	first := true
	backoff := a.cfg.Backoff
	for {
		if ctx.Err() != nil {
			return
		}
		if !first {
			a.reconnects.Add(1)
		}
		first = false
		applied, err := a.streamOnce(ctx)
		a.connected.Store(false)
		if ctx.Err() != nil {
			return
		}
		if err != nil {
			a.setErr(err)
		}
		if applied > 0 {
			backoff = a.cfg.Backoff
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > a.cfg.MaxBackoff {
			backoff = a.cfg.MaxBackoff
		}
	}
}

// streamOnce runs one stream connection to completion, returning how
// many records it applied. A clean server-side close (subscriber
// dropped, primary shutdown) returns nil — the caller reconnects and
// resumes from the new local epoch either way.
func (a *Applier) streamOnce(ctx context.Context) (applied uint64, err error) {
	from := a.cfg.Manager.Epoch()
	u := fmt.Sprintf("%s/v1/repl/stream?source=%s&from=%d", a.cfg.Primary, url.QueryEscape(a.cfg.Source), from)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return 0, err
	}
	resp, err := a.cfg.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		a.truncatedSignal.Add(1)
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return 0, errStreamTruncated
	default:
		return 0, fmt.Errorf("repl: stream %s: %s", u, resp.Status)
	}

	sr := newStreamReader(resp.Body)
	if err := sr.readMagic(); err != nil {
		return 0, err
	}
	a.connected.Store(true)
	a.setErr(nil)
	for {
		fr, err := sr.next()
		if err == io.EOF {
			return applied, nil
		}
		if err != nil {
			return applied, err
		}
		switch fr.Kind {
		case kindRecord:
			advanced, err := a.cfg.Manager.ApplyReplicated(fr.Record)
			if err != nil {
				// An epoch gap means this stream is not contiguous with our
				// chain; drop the connection and resume from the local epoch.
				return applied, err
			}
			a.bumpHead(fr.Record.Epoch)
			if advanced {
				applied++
				a.recordsApplied.Add(1)
			} else {
				a.recordsSkipped.Add(1)
			}
		case kindHeartbeat:
			a.bumpHead(fr.Head)
		}
	}
}

// RedirectPath builds the primary URL an ingest rejected on a replica
// should be retried against.
func RedirectPath(primary, path string) string {
	return primary + path
}

// ParseMinEpoch reads the X-Min-Epoch read-your-writes header (0 when
// absent); an unparsable value is an error so a client typo cannot
// silently drop its consistency requirement.
func ParseMinEpoch(v string) (uint64, error) {
	if v == "" {
		return 0, nil
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("repl: invalid X-Min-Epoch %q", v)
	}
	return n, nil
}
