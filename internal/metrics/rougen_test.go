package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRougeNIdentical(t *testing.T) {
	for n := 1; n <= 3; n++ {
		p, r, f1 := RougeN("a b c d", "a b c d", n)
		if p != 1 || r != 1 || f1 != 1 {
			t.Errorf("n=%d: identical scored p=%v r=%v f1=%v", n, p, r, f1)
		}
	}
}

func TestRougeNKnownValues(t *testing.T) {
	// candidate "the cat sat", reference "the cat ran": unigram overlap
	// 2/3; bigram overlap 1/2.
	p1, r1, _ := RougeN("the cat sat", "the cat ran", 1)
	if math.Abs(p1-2.0/3) > 1e-9 || math.Abs(r1-2.0/3) > 1e-9 {
		t.Errorf("rouge-1 p=%v r=%v", p1, r1)
	}
	p2, _, _ := RougeN("the cat sat", "the cat ran", 2)
	if math.Abs(p2-0.5) > 1e-9 {
		t.Errorf("rouge-2 p=%v", p2)
	}
}

func TestRougeNClippedCounts(t *testing.T) {
	// Repeated candidate n-grams must be clipped to the reference count.
	p, _, _ := RougeN("a a a a", "a b", 1)
	if math.Abs(p-0.25) > 1e-9 {
		t.Errorf("clipped precision = %v, want 0.25", p)
	}
}

func TestRougeNEdgeCases(t *testing.T) {
	if _, _, f1 := RougeN("", "a", 1); f1 != 0 {
		t.Error("empty candidate")
	}
	if _, _, f1 := RougeN("a", "", 1); f1 != 0 {
		t.Error("empty reference")
	}
	if _, _, f1 := RougeN("a", "a", 0); f1 != 0 {
		t.Error("n=0 should score 0")
	}
	if _, _, f1 := RougeN("a", "a b c", 2); f1 != 0 {
		t.Error("candidate shorter than n should score 0")
	}
}

func TestRougeNMulti(t *testing.T) {
	if RougeNMulti("a b", []string{"x y", "a b"}, 1) != 1 {
		t.Error("multi should take the best reference")
	}
	if RougeNMulti("a b", nil, 1) != 0 {
		t.Error("no references should score 0")
	}
}

// Properties: bounded, symmetric swap of precision/recall, and ROUGE-1 F1
// never below ROUGE-2 F1 for identical text pairs (higher orders are
// strictly harder).
func TestRougeNProperties(t *testing.T) {
	f := func(a, b string) bool {
		p1, r1, f1 := RougeN(a, b, 1)
		p2, r2, f2 := RougeN(b, a, 1)
		if f1 < 0 || f1 > 1.000001 {
			return false
		}
		if math.Abs(p1-r2) > 1e-9 || math.Abs(r1-p2) > 1e-9 || math.Abs(f1-f2) > 1e-9 {
			return false
		}
		_, _, g2 := RougeN(a, b, 2)
		return g2 <= f1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
