package metrics

// RougeN returns the ROUGE-N precision, recall and F1 of a candidate
// against a reference for n-gram order n (Lin 2004). The paper evaluates
// with ROUGE-L; ROUGE-1/2 are provided for analysis parity with standard
// summarisation tooling.
func RougeN(candidate, reference string, n int) (precision, recall, f1 float64) {
	if n < 1 {
		return 0, 0, 0
	}
	c := ngrams(TokenizeWords(candidate), n)
	r := ngrams(TokenizeWords(reference), n)
	if len(c) == 0 || len(r) == 0 {
		return 0, 0, 0
	}
	overlap := 0
	seen := make(map[string]int, len(r))
	for _, g := range r {
		seen[g]++
	}
	for _, g := range c {
		if seen[g] > 0 {
			seen[g]--
			overlap++
		}
	}
	precision = float64(overlap) / float64(len(c))
	recall = float64(overlap) / float64(len(r))
	if precision+recall == 0 {
		return precision, recall, 0
	}
	f1 = 2 * precision * recall / (precision + recall)
	return precision, recall, f1
}

// RougeNMulti returns the best ROUGE-N F1 over multiple references.
func RougeNMulti(candidate string, references []string, n int) float64 {
	best := 0.0
	for _, ref := range references {
		if _, _, f1 := RougeN(candidate, ref, n); f1 > best {
			best = f1
		}
	}
	return best
}

// ngrams returns the n-grams of a token sequence as joined strings.
func ngrams(tokens []string, n int) []string {
	if len(tokens) < n {
		return nil
	}
	out := make([]string, 0, len(tokens)-n+1)
	for i := 0; i+n <= len(tokens); i++ {
		g := tokens[i]
		for j := 1; j < n; j++ {
			g += "\x00" + tokens[i+j]
		}
		out = append(out, g)
	}
	return out
}
