// Package metrics implements the paper's evaluation metrics: Hit@1 for the
// precise-answer datasets (SimpleQuestions, QALD-10) and ROUGE-L-f1 for the
// open-ended Nature Questions set, plus the aggregation helpers the bench
// harness uses.
package metrics

import (
	"strings"
	"unicode"
)

// NormalizeAnswer canonicalises an answer surface for Hit@1 comparison:
// lower-case, strip punctuation, collapse whitespace, drop leading
// articles. This mirrors the standard SQuAD/SimpleQuestions normalisation.
func NormalizeAnswer(s string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(s) {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(r)
		case unicode.IsSpace(r):
			b.WriteByte(' ')
		default:
			b.WriteByte(' ')
		}
	}
	fields := strings.Fields(b.String())
	// Drop leading articles.
	for len(fields) > 0 {
		switch fields[0] {
		case "the", "a", "an":
			fields = fields[1:]
		default:
			return strings.Join(fields, " ")
		}
	}
	return strings.Join(fields, " ")
}

// ExtractMarked returns the text inside the first {...} pair, which is how
// the paper's answer-generation prompt marks the answer entity. If no
// braces are present the whole string is returned, so unmarked answers
// still score.
func ExtractMarked(s string) string {
	open := strings.IndexByte(s, '{')
	if open < 0 {
		return s
	}
	close := strings.IndexByte(s[open+1:], '}')
	if close < 0 {
		return s[open+1:]
	}
	return s[open+1 : open+1+close]
}

// Hit1 scores a predicted answer against acceptable gold answers: 1 if the
// normalised marked prediction equals (or contains as a whole answer) any
// normalised gold, else 0.
func Hit1(prediction string, golds []string) float64 {
	pred := NormalizeAnswer(ExtractMarked(prediction))
	if pred == "" {
		return 0
	}
	for _, g := range golds {
		ng := NormalizeAnswer(g)
		if ng == "" {
			continue
		}
		if pred == ng {
			return 1
		}
		// Accept the gold appearing as a token-bounded span of the
		// prediction ("lake superior which area is..." contains gold
		// "lake superior").
		if containsSpan(pred, ng) {
			return 1
		}
	}
	return 0
}

// containsSpan reports whether needle appears in hay on token boundaries.
func containsSpan(hay, needle string) bool {
	ht := strings.Fields(hay)
	nt := strings.Fields(needle)
	if len(nt) == 0 || len(nt) > len(ht) {
		return false
	}
	for i := 0; i+len(nt) <= len(ht); i++ {
		match := true
		for j := range nt {
			if ht[i+j] != nt[j] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// TokenizeWords lower-cases and splits text into word tokens for ROUGE.
func TokenizeWords(s string) []string {
	var tokens []string
	var cur strings.Builder
	for _, r := range strings.ToLower(s) {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			cur.WriteRune(r)
		} else if cur.Len() > 0 {
			tokens = append(tokens, cur.String())
			cur.Reset()
		}
	}
	if cur.Len() > 0 {
		tokens = append(tokens, cur.String())
	}
	return tokens
}

// lcsLen computes the length of the longest common subsequence of two token
// sequences using the O(len(a)*len(b)) DP with two rolling rows.
func lcsLen(a, b []string) int {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			if a[i-1] == b[j-1] {
				cur[j] = prev[j-1] + 1
			} else if prev[j] >= cur[j-1] {
				cur[j] = prev[j]
			} else {
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// RougeL returns the ROUGE-L precision, recall and F1 of a candidate
// against a single reference, following Lin (2004) with beta = 1.
func RougeL(candidate, reference string) (precision, recall, f1 float64) {
	c := TokenizeWords(candidate)
	r := TokenizeWords(reference)
	if len(c) == 0 || len(r) == 0 {
		return 0, 0, 0
	}
	l := float64(lcsLen(c, r))
	precision = l / float64(len(c))
	recall = l / float64(len(r))
	if precision+recall == 0 {
		return precision, recall, 0
	}
	f1 = 2 * precision * recall / (precision + recall)
	return precision, recall, f1
}

// RougeLMulti returns the best F1 over multiple references — the paper
// writes three reference answers per Nature Question and scores against the
// most favourable one.
func RougeLMulti(candidate string, references []string) float64 {
	best := 0.0
	for _, ref := range references {
		if _, _, f1 := RougeL(candidate, ref); f1 > best {
			best = f1
		}
	}
	return best
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Accumulator collects per-question scores and reports aggregates, used by
// the bench harness for each (method, model, dataset) cell.
type Accumulator struct {
	scores []float64
}

// Add records one score.
func (a *Accumulator) Add(score float64) {
	a.scores = append(a.scores, score)
}

// N returns the number of recorded scores.
func (a *Accumulator) N() int { return len(a.scores) }

// Mean returns the mean score (0 when empty).
func (a *Accumulator) Mean() float64 { return Mean(a.scores) }

// Percent returns the mean as a percentage with one decimal of precision
// preserved (e.g. 0.343 -> 34.3).
func (a *Accumulator) Percent() float64 { return a.Mean() * 100 }
