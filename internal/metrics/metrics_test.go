package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalizeAnswer(t *testing.T) {
	tests := []struct{ in, want string }{
		{"The Lake Superior", "lake superior"},
		{"  Hello,   World! ", "hello world"},
		{"A  B", "b"},
		{"1,443,497,378", "1 443 497 378"},
		{"", ""},
	}
	for _, tt := range tests {
		if got := NormalizeAnswer(tt.in); got != tt.want {
			t.Errorf("NormalizeAnswer(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestExtractMarked(t *testing.T) {
	tests := []struct{ in, want string }{
		{"the answer is {Paris}.", "Paris"},
		{"{X} and {Y}", "X"},
		{"no braces at all", "no braces at all"},
		{"open only {trailing", "trailing"},
	}
	for _, tt := range tests {
		if got := ExtractMarked(tt.in); got != tt.want {
			t.Errorf("ExtractMarked(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestHit1(t *testing.T) {
	tests := []struct {
		pred  string
		golds []string
		want  float64
	}{
		{"Based on the graph, the answer is {Lake Superior}.", []string{"Lake Superior"}, 1},
		{"the answer is {lake superior}", []string{"Lake Superior"}, 1},
		{"{Lake Michigan}", []string{"Lake Superior"}, 0},
		{"the largest is {Lake Superior} which area is 82,350", []string{"Lake Superior"}, 1},
		{"{82350}", []string{"82350", "82000"}, 1},
		{"answer: {}", []string{"x"}, 0},
		{"{The Nile}", []string{"Nile"}, 1}, // article dropped
	}
	for _, tt := range tests {
		if got := Hit1(tt.pred, tt.golds); got != tt.want {
			t.Errorf("Hit1(%q, %v) = %v, want %v", tt.pred, tt.golds, got, tt.want)
		}
	}
}

func TestHit1SpanBoundaries(t *testing.T) {
	// Gold must match on token boundaries, not substrings.
	if Hit1("{superiority}", []string{"superior"}) != 0 {
		t.Error("substring matched across token boundary")
	}
	if Hit1("{the lake superior region}", []string{"Lake Superior"}) != 1 {
		t.Error("token-bounded span not matched")
	}
}

func TestRougeLIdentical(t *testing.T) {
	p, r, f1 := RougeL("a b c d", "a b c d")
	if p != 1 || r != 1 || f1 != 1 {
		t.Errorf("identical: p=%v r=%v f1=%v", p, r, f1)
	}
}

func TestRougeLDisjoint(t *testing.T) {
	_, _, f1 := RougeL("a b c", "x y z")
	if f1 != 0 {
		t.Errorf("disjoint f1 = %v", f1)
	}
}

func TestRougeLKnownValue(t *testing.T) {
	// candidate "a b d", reference "a c b d": LCS = "a b d" (3).
	p, r, f1 := RougeL("a b d", "a c b d")
	if math.Abs(p-1.0) > 1e-9 {
		t.Errorf("precision = %v, want 1", p)
	}
	if math.Abs(r-0.75) > 1e-9 {
		t.Errorf("recall = %v, want 0.75", r)
	}
	want := 2 * 1.0 * 0.75 / 1.75
	if math.Abs(f1-want) > 1e-9 {
		t.Errorf("f1 = %v, want %v", f1, want)
	}
}

func TestRougeLEmpty(t *testing.T) {
	if _, _, f1 := RougeL("", "a b"); f1 != 0 {
		t.Error("empty candidate should score 0")
	}
	if _, _, f1 := RougeL("a b", ""); f1 != 0 {
		t.Error("empty reference should score 0")
	}
}

func TestRougeLMultiTakesBest(t *testing.T) {
	refs := []string{"x y z", "a b c d"}
	got := RougeLMulti("a b c d", refs)
	if got != 1 {
		t.Errorf("multi-ref best = %v, want 1", got)
	}
	if RougeLMulti("a b", nil) != 0 {
		t.Error("no refs should score 0")
	}
}

// Properties: f1 bounded in [0,1]; swapping candidate and reference swaps
// precision and recall but preserves f1.
func TestRougeLProperties(t *testing.T) {
	f := func(a, b string) bool {
		p1, r1, f1 := RougeL(a, b)
		p2, r2, f2 := RougeL(b, a)
		if f1 < 0 || f1 > 1.000001 {
			return false
		}
		if math.Abs(p1-r2) > 1e-9 || math.Abs(r1-p2) > 1e-9 {
			return false
		}
		return math.Abs(f1-f2) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTokenizeWords(t *testing.T) {
	got := TokenizeWords("Hello, World! It's 42.")
	want := []string{"hello", "world", "it", "s", "42"}
	if len(got) != len(want) {
		t.Fatalf("TokenizeWords = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestMeanAndAccumulator(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("Mean wrong")
	}
	var acc Accumulator
	if acc.Mean() != 0 || acc.N() != 0 {
		t.Error("zero accumulator wrong")
	}
	acc.Add(1)
	acc.Add(0)
	if acc.N() != 2 || acc.Mean() != 0.5 || acc.Percent() != 50 {
		t.Errorf("accumulator: n=%d mean=%v pct=%v", acc.N(), acc.Mean(), acc.Percent())
	}
}
