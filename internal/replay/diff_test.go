package replay

import (
	"os"
	"strings"
	"testing"
)

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// baselineArtifact is a hand-built healthy artifact the gate tests doctor.
func baselineArtifact() Artifact {
	return Artifact{
		Version: ArtifactVersion,
		Seed:    42,
		Quick:   true,
		Cells:   12,
		Methods: map[string]MethodReport{
			"Ours": {N: 6, Accuracy: 83.3333, LLMCalls: 18, PromptTokens: 4000, CompletionTokens: 600,
				Latency: LatencyMS{P50: 900, P95: 1500, P99: 1600}},
			"CoT": {N: 6, Accuracy: 50, LLMCalls: 6, PromptTokens: 900, CompletionTokens: 300,
				Latency: LatencyMS{P50: 400, P95: 600, P99: 650}},
		},
	}
}

func findKinds(rep Report) map[string]bool {
	kinds := map[string]bool{}
	for _, f := range rep.Findings {
		kinds[f.Method+"/"+f.Kind] = true
	}
	return kinds
}

func TestDiffCleanPass(t *testing.T) {
	b := baselineArtifact()
	rep := Diff(b, b, DefaultThresholds())
	if !rep.OK() || len(rep.Findings) != 0 {
		t.Fatalf("identical artifacts must pass clean: %s", rep.Format())
	}
	if !strings.Contains(rep.Format(), "no changes") {
		t.Errorf("clean format: %q", rep.Format())
	}
}

// TestDiffTripsOnAccuracyDrop proves the gate fails on an injected
// accuracy regression (an acceptance criterion).
func TestDiffTripsOnAccuracyDrop(t *testing.T) {
	b := baselineArtifact()
	cur := baselineArtifact()
	m := cur.Methods["Ours"]
	m.Accuracy = b.Methods["Ours"].Accuracy - 5
	cur.Methods["Ours"] = m
	rep := Diff(b, cur, DefaultThresholds())
	if rep.OK() {
		t.Fatalf("gate passed a 5pp accuracy drop: %s", rep.Format())
	}
	if !findKinds(rep)["Ours/accuracy-drop"] {
		t.Fatalf("missing accuracy-drop finding: %s", rep.Format())
	}
	// A drop within the tolerance stays green.
	m.Accuracy = b.Methods["Ours"].Accuracy - 0.4
	cur.Methods["Ours"] = m
	if rep := Diff(b, cur, DefaultThresholds()); !rep.OK() {
		t.Fatalf("0.4pp drop should pass a 0.5pp gate: %s", rep.Format())
	}
}

// TestDiffTripsOnP95Inflation proves the gate fails on an injected
// latency regression (an acceptance criterion).
func TestDiffTripsOnP95Inflation(t *testing.T) {
	b := baselineArtifact()
	cur := baselineArtifact()
	m := cur.Methods["CoT"]
	m.Latency.P95 = b.Methods["CoT"].Latency.P95 * 2
	cur.Methods["CoT"] = m
	rep := Diff(b, cur, DefaultThresholds())
	if rep.OK() || !findKinds(rep)["CoT/p95-inflation"] {
		t.Fatalf("gate missed a 2x p95 inflation: %s", rep.Format())
	}
	// +20% under a 1.25x gate passes.
	m.Latency.P95 = b.Methods["CoT"].Latency.P95 * 1.2
	cur.Methods["CoT"] = m
	if rep := Diff(b, cur, DefaultThresholds()); !rep.OK() {
		t.Fatalf("1.2x p95 should pass a 1.25x gate: %s", rep.Format())
	}
}

func TestDiffTripsOnTokenInflation(t *testing.T) {
	b := baselineArtifact()
	cur := baselineArtifact()
	m := cur.Methods["Ours"]
	m.PromptTokens = int(float64(m.PromptTokens) * 1.5)
	cur.Methods["Ours"] = m
	rep := Diff(b, cur, DefaultThresholds())
	if rep.OK() || !findKinds(rep)["Ours/token-inflation"] {
		t.Fatalf("gate missed a 1.4x token inflation: %s", rep.Format())
	}
}

func TestDiffTripsOnNewErrorsAndMissingMethod(t *testing.T) {
	b := baselineArtifact()

	cur := baselineArtifact()
	m := cur.Methods["CoT"]
	m.Errors = 2
	m.ErrorsByClass = map[string]int{"upstream": 2}
	cur.Methods["CoT"] = m
	rep := Diff(b, cur, DefaultThresholds())
	if rep.OK() || !findKinds(rep)["CoT/new-errors"] {
		t.Fatalf("gate missed new errors: %s", rep.Format())
	}

	cur = baselineArtifact()
	delete(cur.Methods, "Ours")
	rep = Diff(b, cur, DefaultThresholds())
	if rep.OK() || !findKinds(rep)["Ours/method-missing"] {
		t.Fatalf("gate missed a vanished method: %s", rep.Format())
	}
}

func TestDiffCellCountChangeIsFatal(t *testing.T) {
	b := baselineArtifact()
	cur := baselineArtifact()
	m := cur.Methods["Ours"]
	m.N = 5
	cur.Methods["Ours"] = m
	rep := Diff(b, cur, DefaultThresholds())
	if rep.OK() || !findKinds(rep)["Ours/cells-changed"] {
		t.Fatalf("gate missed a cell-count change: %s", rep.Format())
	}
}

func TestDiffNewMethodIsInformational(t *testing.T) {
	b := baselineArtifact()
	cur := baselineArtifact()
	cur.Methods["RAG"] = MethodReport{N: 6, Accuracy: 40}
	rep := Diff(b, cur, DefaultThresholds())
	if !rep.OK() {
		t.Fatalf("a new method must not fail the gate: %s", rep.Format())
	}
	if !findKinds(rep)["RAG/method-added"] {
		t.Fatalf("new method not reported: %s", rep.Format())
	}
	if !strings.Contains(rep.Format(), "PASS") {
		t.Errorf("format verdict: %q", rep.Format())
	}
}
