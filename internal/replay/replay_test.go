package replay

import (
	"bytes"
	"context"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/bench"
)

// Recording a suite is the expensive step (it answers every cell), so the
// tests share one.
var (
	suiteOnce sync.Once
	suiteVal  Suite
	suiteErr  error
)

func testSuite(t *testing.T) Suite {
	t.Helper()
	suiteOnce.Do(func() {
		suiteVal, suiteErr = RecordSuite(context.Background(), RecordOptions{
			Seed:       42,
			Quick:      true,
			Methods:    []string{bench.MethodOurs, bench.MethodIO, bench.MethodCoT},
			PerDataset: 2,
			Note:       "test suite",
		})
	})
	if suiteErr != nil {
		t.Fatal(suiteErr)
	}
	return suiteVal
}

func TestRecordSuiteShape(t *testing.T) {
	s := testSuite(t)
	// 7 datasets (paper trio + 4 scenario packs) x 3 methods x 2 questions.
	if len(s.Records) != 42 {
		t.Fatalf("want 42 records, got %d", len(s.Records))
	}
	if s.Meta.Seed != 42 || !s.Meta.Quick || s.Meta.Version != SuiteVersion {
		t.Fatalf("meta wrong: %+v", s.Meta)
	}
	seenGold := false
	for _, rec := range s.Records {
		if rec.ID == "" {
			t.Fatalf("record not stamped: %+v", rec)
		}
		if rec.Time != "" {
			t.Fatalf("suite records must carry no wall time: %+v", rec)
		}
		if rec.KG != "wikidata" && rec.KG != "freebase" {
			t.Fatalf("record has no KG: %+v", rec)
		}
		if len(rec.Golds) > 0 || len(rec.Refs) > 0 {
			seenGold = true
		}
	}
	if !seenGold {
		t.Fatal("no record carries gold material; replay could never score")
	}
}

func TestSuiteRoundTrip(t *testing.T) {
	s := testSuite(t)
	path := filepath.Join(t.TempDir(), "suite.jsonl")
	if err := WriteSuite(path, s); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSuite(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Meta, s.Meta) {
		t.Fatalf("meta diverged: %+v vs %+v", back.Meta, s.Meta)
	}
	if len(back.Records) != len(s.Records) {
		t.Fatalf("record count diverged: %d vs %d", len(back.Records), len(s.Records))
	}
	// And writing the reread suite reproduces the file byte for byte.
	path2 := filepath.Join(t.TempDir(), "suite2.jsonl")
	if err := WriteSuite(path2, back); err != nil {
		t.Fatal(err)
	}
	b1 := mustRead(t, path)
	b2 := mustRead(t, path2)
	if !bytes.Equal(b1, b2) {
		t.Fatal("suite files diverged across a read/write round trip")
	}
}

// TestReplayIsByteIdentical is the acceptance criterion: replaying the
// same recorded suite twice produces byte-identical artifacts.
func TestReplayIsByteIdentical(t *testing.T) {
	s := testSuite(t)
	a1, err := Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := a1.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := a2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("artifacts diverged across two replays of the same suite:\n--- run 1\n%s\n--- run 2\n%s", b1, b2)
	}
}

// TestReplayMatchesRecording: replaying right after recording on the same
// binary shows zero drift — same answers, same epochs — and sane reports.
func TestReplayMatchesRecording(t *testing.T) {
	s := testSuite(t)
	art, err := Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if art.Cells != len(s.Records) {
		t.Fatalf("cells %d, want %d", art.Cells, len(s.Records))
	}
	if len(art.Methods) != 3 {
		t.Fatalf("methods %v, want 3", art.Methods)
	}
	for m, r := range art.Methods {
		if r.N != 14 {
			t.Errorf("%s: n=%d, want 14", m, r.N)
		}
		if r.AnswerDrift != 0 || r.EpochDrift != 0 {
			t.Errorf("%s: drift on an unchanged binary: %+v", m, r)
		}
		if r.LLMCalls == 0 || r.TotalTokens() == 0 {
			t.Errorf("%s: no usage accounted: %+v", m, r)
		}
		if r.Latency.P95 <= 0 || r.Latency.P50 > r.Latency.P95 || r.Latency.P95 > r.Latency.P99 {
			t.Errorf("%s: latency percentiles disordered: %+v", m, r.Latency)
		}
	}
	// Round trip the artifact through its codec.
	raw, err := art.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeArtifact(raw)
	if err != nil {
		t.Fatal(err)
	}
	if back.Cells != art.Cells || len(back.Methods) != len(art.Methods) {
		t.Fatalf("artifact round trip diverged: %+v", back)
	}
	// Zero drift against itself: the gate passes with no findings.
	rep := Diff(art, art, DefaultThresholds())
	if !rep.OK() || len(rep.Findings) != 0 {
		t.Fatalf("self-diff not clean: %s", rep.Format())
	}
}

func TestReadSuiteRejectsBrokenFiles(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"empty.jsonl":       "",
		"no-records.jsonl":  `{"suite_version":1,"seed":42,"quick":true}` + "\n",
		"bad-meta.jsonl":    "CORRUPT\n",
		"bad-version.jsonl": `{"suite_version":99}` + "\n" + `{"question":"q","method":"io","epoch":0,"cache_hit":false,"llm_calls":0,"prompt_tokens":0,"completion_tokens":0}` + "\n",
		"torn-record.jsonl": `{"suite_version":1,"seed":42,"quick":true}` + "\n" + `{"question":"q"` + "\n",
	} {
		path := filepath.Join(dir, name)
		writeFile(t, path, content)
		if _, err := ReadSuite(path); err == nil {
			t.Errorf("ReadSuite(%s) accepted a broken suite", name)
		}
	}
}

func TestVirtualLatencyMonotone(t *testing.T) {
	base := VirtualLatencyUS(2, 100, 20)
	if VirtualLatencyUS(3, 100, 20) <= base {
		t.Error("extra call must cost virtual time")
	}
	if VirtualLatencyUS(2, 200, 20) <= base {
		t.Error("extra prompt tokens must cost virtual time")
	}
	if VirtualLatencyUS(2, 100, 40) <= base {
		t.Error("extra completion tokens must cost virtual time")
	}
	if VirtualLatencyUS(0, 0, 0) != 0 {
		t.Error("no work, no virtual time")
	}
}
