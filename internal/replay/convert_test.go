package replay

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/trace"
)

// liveRecord fabricates what a trace store would hold for one served
// request: store identity, wall time, usage — and no gold material.
func liveRecord(id, question string, pv map[string]string) trace.Record {
	return trace.Record{
		ID:       id,
		Time:     "2026-08-08T12:00:00.123456789Z",
		Question: question,
		Method:   bench.MethodIO,
		Model:    bench.ModelGPT35,
		KG:       "wikidata",
		Answer:   "The answer is {42}.",
		Epoch:    3,
		LLMCalls: 1, PromptTokens: 40, CompletionTokens: 12,
		ElapsedUS:      1500,
		PromptVersions: pv,
	}
}

func writeTraceLog(t *testing.T, recs ...trace.Record) string {
	t.Helper()
	var b strings.Builder
	for _, rec := range recs {
		line, err := trace.Encode(rec)
		if err != nil {
			t.Fatal(err)
		}
		b.Write(line)
	}
	path := filepath.Join(t.TempDir(), "traces.jsonl")
	writeFile(t, path, b.String())
	return path
}

func TestSuiteFromTraces(t *testing.T) {
	pv := map[string]string{"answer-graph": "1", "io": "1"}
	path := writeTraceLog(t,
		liveRecord("t000007", "What is the capital of Alandia?", pv),
		liveRecord("t000009", "Where was Ada born?", pv),
		liveRecord("t000012", "What is the population of Borland?", nil),
	)
	s, err := SuiteFromTraces(path, RecordOptions{Seed: 42, Quick: true, Note: "from prod"})
	if err != nil {
		t.Fatal(err)
	}
	if s.Meta.Seed != 42 || !s.Meta.Quick || s.Meta.Note != "from prod" || s.Meta.Version != SuiteVersion {
		t.Fatalf("meta wrong: %+v", s.Meta)
	}
	if len(s.Meta.PromptVersions) != 2 || s.Meta.PromptVersions["io"] != "1" {
		t.Fatalf("prompt versions not promoted into meta: %+v", s.Meta.PromptVersions)
	}
	if len(s.Records) != 3 {
		t.Fatalf("want 3 records, got %d", len(s.Records))
	}
	for i, rec := range s.Records {
		// Suite identity replaces store identity; wall time is stripped.
		if want := []string{"r000001", "r000002", "r000003"}[i]; rec.ID != want {
			t.Errorf("record %d id = %q, want %q", i, rec.ID, want)
		}
		if rec.Time != "" {
			t.Errorf("record %d kept wall time %q", i, rec.Time)
		}
		// Live traffic carries no gold material, and conversion must not
		// invent any.
		if len(rec.Golds) != 0 || len(rec.Refs) != 0 {
			t.Errorf("record %d grew gold material: %+v", i, rec)
		}
	}
	// The converted suite is a committed artifact: it must round-trip
	// through the suite codec.
	out := filepath.Join(t.TempDir(), "suite.jsonl")
	if err := WriteSuite(out, s); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSuite(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Records) != len(s.Records) {
		t.Fatalf("round trip lost records: %d vs %d", len(back.Records), len(s.Records))
	}
}

func TestSuiteFromTracesRejectsMixedPromptVersions(t *testing.T) {
	path := writeTraceLog(t,
		liveRecord("t000001", "q1?", map[string]string{"io": "1"}),
		liveRecord("t000002", "q2?", map[string]string{"io": "2"}),
	)
	_, err := SuiteFromTraces(path, RecordOptions{Seed: 1, Quick: true})
	if err == nil || !strings.Contains(err.Error(), "prompt versions") {
		t.Fatalf("mixed prompt versions accepted: %v", err)
	}
}

func TestSuiteFromTracesRejectsUnreplayableRecords(t *testing.T) {
	cases := map[string]trace.Record{
		"no question": func() trace.Record {
			r := liveRecord("t1", "q?", nil)
			r.Question = "  "
			return r
		}(),
		"no method": func() trace.Record {
			r := liveRecord("t1", "q?", nil)
			r.Method = ""
			return r
		}(),
		"bad kg": func() trace.Record {
			r := liveRecord("t1", "q?", nil)
			r.KG = "dbpedia"
			return r
		}(),
	}
	for name, rec := range cases {
		path := writeTraceLog(t, rec)
		if _, err := SuiteFromTraces(path, RecordOptions{Seed: 1}); err == nil {
			t.Errorf("%s: unreplayable record accepted", name)
		}
	}
}

func TestSuiteFromTracesRejectsBrokenLogs(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"empty.jsonl": "",
		"blank.jsonl": "\n\n",
		"torn.jsonl":  `{"question":"q"`,
	} {
		path := filepath.Join(dir, name)
		writeFile(t, path, content)
		if _, err := SuiteFromTraces(path, RecordOptions{Seed: 1}); err == nil {
			t.Errorf("SuiteFromTraces(%s) accepted a broken log", name)
		}
	}
}

// TestConvertedSuiteReplays: the converter's output is not just
// well-formed, it actually drives the replay harness end to end.
func TestConvertedSuiteReplays(t *testing.T) {
	path := writeTraceLog(t,
		liveRecord("t000001", "What is the capital of Alandia?", nil),
		liveRecord("t000002", "Where was Ada born?", nil),
	)
	s, err := SuiteFromTraces(path, RecordOptions{Seed: 42, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	art, err := Run(t.Context(), s)
	if err != nil {
		t.Fatal(err)
	}
	if art.Cells != 2 {
		t.Fatalf("cells = %d, want 2", art.Cells)
	}
	r, ok := art.Methods[bench.MethodIO]
	if !ok || r.N != 2 {
		t.Fatalf("IO method not aggregated: %+v", art.Methods)
	}
}
