package replay

import (
	"bytes"
	"fmt"
	"sort"
)

// Thresholds are the regression gate's limits. The zero value is not
// useful — use DefaultThresholds and tighten/loosen per flag.
type Thresholds struct {
	// MaxAccuracyDropPP is the largest tolerated per-method accuracy drop
	// in percentage points.
	MaxAccuracyDropPP float64
	// MaxP95Inflation is the largest tolerated ratio of current to
	// baseline virtual p95 latency (1.25 = +25%).
	MaxP95Inflation float64
	// MaxTokenInflation is the largest tolerated ratio of current to
	// baseline total token cost.
	MaxTokenInflation float64
}

// DefaultThresholds are the CI gate defaults: accuracy is tight (the
// simulated environment is fully deterministic, so any drop is a real
// behaviour change), cost and latency get headroom for intended changes.
func DefaultThresholds() Thresholds {
	return Thresholds{
		MaxAccuracyDropPP: 0.5,
		MaxP95Inflation:   1.25,
		MaxTokenInflation: 1.10,
	}
}

// Finding is one gate violation or notable change.
type Finding struct {
	Method string `json:"method"`
	// Kind: accuracy-drop | p95-inflation | token-inflation | new-errors |
	// method-missing | method-added | cells-changed.
	Kind     string  `json:"kind"`
	Baseline float64 `json:"baseline"`
	Current  float64 `json:"current"`
	Detail   string  `json:"detail"`
	// Fatal findings fail the gate; non-fatal ones are informational
	// (new methods, answer drift commentary).
	Fatal bool `json:"fatal"`
}

// Report is the outcome of diffing a replay artifact against a baseline.
type Report struct {
	Findings []Finding `json:"findings"`
}

// OK reports whether the gate passes (no fatal findings).
func (r Report) OK() bool {
	for _, f := range r.Findings {
		if f.Fatal {
			return false
		}
	}
	return true
}

// Diff compares a current artifact against the committed baseline under
// the gate thresholds. Findings come out sorted (method, kind) so the
// gate's output is as deterministic as the artifacts it reads.
func Diff(baseline, current Artifact, th Thresholds) Report {
	var rep Report
	add := func(f Finding) { rep.Findings = append(rep.Findings, f) }

	methods := make([]string, 0, len(baseline.Methods))
	for m := range baseline.Methods {
		methods = append(methods, m)
	}
	sort.Strings(methods)

	for _, m := range methods {
		b := baseline.Methods[m]
		c, ok := current.Methods[m]
		if !ok {
			add(Finding{Method: m, Kind: "method-missing", Baseline: float64(b.N), Fatal: true,
				Detail: fmt.Sprintf("method %s present in baseline (%d cells) but absent from current artifact", m, b.N)})
			continue
		}
		if c.N != b.N {
			add(Finding{Method: m, Kind: "cells-changed", Baseline: float64(b.N), Current: float64(c.N), Fatal: true,
				Detail: fmt.Sprintf("cell count moved %d -> %d; diff the suite, not just the binary", b.N, c.N)})
		}
		if drop := b.Accuracy - c.Accuracy; drop > th.MaxAccuracyDropPP {
			add(Finding{Method: m, Kind: "accuracy-drop", Baseline: b.Accuracy, Current: c.Accuracy, Fatal: true,
				Detail: fmt.Sprintf("accuracy fell %.4f -> %.4f (-%.4fpp, gate %.4fpp)", b.Accuracy, c.Accuracy, drop, th.MaxAccuracyDropPP)})
		}
		if b.Latency.P95 > 0 && th.MaxP95Inflation > 0 {
			if ratio := c.Latency.P95 / b.Latency.P95; ratio > th.MaxP95Inflation {
				add(Finding{Method: m, Kind: "p95-inflation", Baseline: b.Latency.P95, Current: c.Latency.P95, Fatal: true,
					Detail: fmt.Sprintf("virtual p95 inflated %.1fms -> %.1fms (%.2fx, gate %.2fx)", b.Latency.P95, c.Latency.P95, ratio, th.MaxP95Inflation)})
			}
		}
		if bt := b.TotalTokens(); bt > 0 && th.MaxTokenInflation > 0 {
			if ratio := float64(c.TotalTokens()) / float64(bt); ratio > th.MaxTokenInflation {
				add(Finding{Method: m, Kind: "token-inflation", Baseline: float64(bt), Current: float64(c.TotalTokens()), Fatal: true,
					Detail: fmt.Sprintf("token cost inflated %d -> %d (%.2fx, gate %.2fx)", bt, c.TotalTokens(), ratio, th.MaxTokenInflation)})
			}
		}
		if c.Errors > b.Errors {
			add(Finding{Method: m, Kind: "new-errors", Baseline: float64(b.Errors), Current: float64(c.Errors), Fatal: true,
				Detail: fmt.Sprintf("errored cells rose %d -> %d (classes: %v)", b.Errors, c.Errors, c.ErrorsByClass)})
		}
	}

	extra := make([]string, 0)
	for m := range current.Methods {
		if _, ok := baseline.Methods[m]; !ok {
			extra = append(extra, m)
		}
	}
	sort.Strings(extra)
	for _, m := range extra {
		c := current.Methods[m]
		add(Finding{Method: m, Kind: "method-added", Current: float64(c.N),
			Detail: fmt.Sprintf("method %s (%d cells) is new since the baseline; refresh the baseline to start gating it", m, c.N)})
	}
	return rep
}

// Format renders the report for CI logs: one line per finding, fatal
// ones marked, and a verdict line last.
func (r Report) Format() string {
	var buf bytes.Buffer
	if len(r.Findings) == 0 {
		buf.WriteString("replay gate: no changes against baseline\n")
		return buf.String()
	}
	for _, f := range r.Findings {
		mark := "note"
		if f.Fatal {
			mark = "FAIL"
		}
		fmt.Fprintf(&buf, "[%s] %s %s: %s\n", mark, f.Method, f.Kind, f.Detail)
	}
	if r.OK() {
		buf.WriteString("replay gate: PASS (informational findings only)\n")
	} else {
		buf.WriteString("replay gate: FAIL\n")
	}
	return buf.String()
}
