package replay

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"reflect"
	"sort"
	"strings"
	"time"

	"repro/internal/kg"
	"repro/internal/trace"
)

// SuiteFromTraces converts a live trace log (the JSONL a FileStore or
// serve.WithTrace writes) into a replay suite: every decoded record is
// stripped of its wall time and store identity and restamped with the
// suite's deterministic IDs. Gold material stays exactly as recorded —
// live traffic usually carries none, so a converted suite replays for
// drift (answers, epochs, usage), not accuracy.
//
// The caller supplies the environment pin (seed/quick/note) via opts,
// because a trace log does not record the world it ran against. Prompt
// versions, in contrast, ARE recorded per request, and the converter
// promotes them into the suite meta — but only when every record that
// carries them agrees; a log spanning a prompt bump cannot be pinned to
// one version set and must be split first.
//
// Unlike the trace store's crash recovery, conversion is strict: a torn
// or malformed line is a hard error, as is a record that could never
// replay (no question, no method, or an unknown KG source).
func SuiteFromTraces(path string, opts RecordOptions) (Suite, error) {
	f, err := os.Open(path)
	if err != nil {
		return Suite{}, fmt.Errorf("replay: %w", err)
	}
	defer f.Close()

	s := Suite{Meta: SuiteMeta{
		Version: SuiteVersion, Seed: opts.Seed, Quick: opts.Quick, Note: opts.Note,
	}}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for line := 1; sc.Scan(); line++ {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		rec, err := trace.Decode(sc.Bytes())
		if err != nil {
			return Suite{}, fmt.Errorf("replay: %s line %d: %w", path, line, err)
		}
		if err := replayable(rec); err != nil {
			return Suite{}, fmt.Errorf("replay: %s line %d: %w", path, line, err)
		}
		if len(rec.PromptVersions) > 0 {
			switch {
			case s.Meta.PromptVersions == nil:
				s.Meta.PromptVersions = rec.PromptVersions
			case !reflect.DeepEqual(s.Meta.PromptVersions, rec.PromptVersions):
				return Suite{}, fmt.Errorf(
					"replay: %s line %d: prompt versions %s conflict with earlier records' %s; the log spans a prompt change — split it before converting",
					path, line, formatVersions(rec.PromptVersions), formatVersions(s.Meta.PromptVersions))
			}
		}
		// Zero wall time, deterministic IDs: the suite contract.
		rec.Time = ""
		rec = rec.Stamp(fmt.Sprintf("r%06d", len(s.Records)+1), time.Time{})
		s.Records = append(s.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return Suite{}, fmt.Errorf("replay: reading %s: %w", path, err)
	}
	if len(s.Records) == 0 {
		return Suite{}, fmt.Errorf("replay: %s holds no trace records", path)
	}
	return s, nil
}

// replayable rejects a trace record the replay harness could not re-run.
func replayable(rec trace.Record) error {
	if strings.TrimSpace(rec.Question) == "" {
		return fmt.Errorf("record has no question")
	}
	if rec.Method == "" {
		return fmt.Errorf("record has no method")
	}
	if src, err := kg.ParseSource(rec.KG); err != nil || src == kg.SourceUnknown {
		return fmt.Errorf("record has unreplayable kg %q", rec.KG)
	}
	return nil
}

func formatVersions(vs map[string]string) string {
	pairs := make([]string, 0, len(vs))
	for k, v := range vs {
		pairs = append(pairs, k+"@"+v)
	}
	sort.Strings(pairs)
	return "{" + strings.Join(pairs, " ") + "}"
}
