package replay

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"repro/internal/trace"
)

// ArtifactVersion is the artifact format version Encode stamps.
const ArtifactVersion = 1

// Virtual latency model: a pure function of the work a request did, so
// latency percentiles are deterministic and a p95 gate trips on genuine
// extra work (more LLM calls, fatter prompts) rather than machine noise.
// The weights approximate a hosted LLM's cost shape — a per-call round
// trip plus per-token streaming cost, completion tokens slower than
// prompt ingestion — in virtual microseconds.
const (
	virtualPerCallUS            = 250_000
	virtualPerPromptTokenUS     = 150
	virtualPerCompletionTokenUS = 2_000
)

// VirtualLatencyUS computes a record's virtual latency from its usage
// counters.
func VirtualLatencyUS(llmCalls, promptTokens, completionTokens int) int64 {
	return int64(llmCalls)*virtualPerCallUS +
		int64(promptTokens)*virtualPerPromptTokenUS +
		int64(completionTokens)*virtualPerCompletionTokenUS
}

// LatencyMS is a virtual-latency percentile summary in milliseconds.
type LatencyMS struct {
	P50 float64 `json:"p50_ms"`
	P95 float64 `json:"p95_ms"`
	P99 float64 `json:"p99_ms"`
}

// MethodReport is one method's replay aggregate.
type MethodReport struct {
	// N is the number of replayed cells; Errors of them failed, bucketed
	// by class in ErrorsByClass.
	N             int            `json:"n"`
	Errors        int            `json:"errors"`
	ErrorsByClass map[string]int `json:"errors_by_class,omitempty"`
	// Accuracy is the mean score (Hit@1 / ROUGE-L-f1) as a percentage,
	// rounded to 4 decimals so float formatting can never wobble a byte.
	Accuracy float64 `json:"accuracy"`
	// AnswerDrift counts cells whose replayed answer text differs from the
	// recorded one; EpochDrift counts cells served from a different
	// substrate epoch than recorded, and CacheHits cells the recording
	// itself served from cache (their zero usage would poison cost
	// comparisons, so drift in those is substrate/cache churn, not method
	// regression).
	AnswerDrift int `json:"answer_drift"`
	EpochDrift  int `json:"epoch_drift"`
	CacheHits   int `json:"cache_hits"`
	// Token cost of the replay run.
	LLMCalls         int `json:"llm_calls"`
	PromptTokens     int `json:"prompt_tokens"`
	CompletionTokens int `json:"completion_tokens"`
	// Latency is the virtual-latency percentile summary.
	Latency LatencyMS `json:"latency"`
}

// TotalTokens is the scalar the token-inflation gate compares.
func (m MethodReport) TotalTokens() int { return m.PromptTokens + m.CompletionTokens }

// Artifact is one replay run's full result: the suite pin it ran under
// and a per-method report. Encode produces canonical bytes — same suite,
// same binary, same artifact, byte for byte.
type Artifact struct {
	Version int    `json:"artifact_version"`
	Seed    int64  `json:"seed"`
	Quick   bool   `json:"quick"`
	Cells   int    `json:"cells"`
	Note    string `json:"note,omitempty"`
	// Methods maps method name to its report; encoding/json emits map
	// keys sorted, which keeps the artifact canonical.
	Methods map[string]MethodReport `json:"methods"`
}

// Encode renders the artifact as canonical indented JSON with a trailing
// newline. Determinism: struct fields emit in declaration order, map keys
// sort, and every float is pre-rounded.
func (a Artifact) Encode() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(a); err != nil {
		return nil, fmt.Errorf("replay: encoding artifact: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeArtifact parses an artifact produced by Encode.
func DecodeArtifact(data []byte) (Artifact, error) {
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return Artifact{}, fmt.Errorf("replay: decoding artifact: %w", err)
	}
	if a.Version != ArtifactVersion {
		return Artifact{}, fmt.Errorf("replay: artifact version %d, this binary reads version %d", a.Version, ArtifactVersion)
	}
	return a, nil
}

// methodAgg accumulates one method's cells during a replay run.
type methodAgg struct {
	n, errors     int
	errorsByClass map[string]int
	scoreSum      float64
	answerDrift   int
	epochDrift    int
	cacheHits     int
	llmCalls      int
	promptTokens  int
	complTokens   int
	virtualUS     []int64
}

func newMethodAgg() *methodAgg {
	return &methodAgg{errorsByClass: map[string]int{}}
}

// add folds one replayed cell in: rec is the recorded baseline cell, cur
// the freshly replayed one (same question, method, model, KG).
func (a *methodAgg) add(rec, cur trace.Record) {
	a.n++
	if cur.Error != "" {
		a.errors++
		a.errorsByClass[cur.ErrorClass]++
	}
	a.scoreSum += scoreRecord(rec, cur.Answer)
	if cur.Answer != rec.Answer {
		a.answerDrift++
	}
	if cur.Epoch != rec.Epoch {
		a.epochDrift++
	}
	if rec.CacheHit {
		a.cacheHits++
	}
	a.llmCalls += cur.LLMCalls
	a.promptTokens += cur.PromptTokens
	a.complTokens += cur.CompletionTokens
	a.virtualUS = append(a.virtualUS, VirtualLatencyUS(cur.LLMCalls, cur.PromptTokens, cur.CompletionTokens))
}

func (a *methodAgg) report() MethodReport {
	r := MethodReport{
		N:                a.n,
		Errors:           a.errors,
		Accuracy:         round4(a.scoreSum / float64(a.n) * 100),
		AnswerDrift:      a.answerDrift,
		EpochDrift:       a.epochDrift,
		CacheHits:        a.cacheHits,
		LLMCalls:         a.llmCalls,
		PromptTokens:     a.promptTokens,
		CompletionTokens: a.complTokens,
		Latency: LatencyMS{
			P50: round4(float64(percentileUS(a.virtualUS, 50)) / 1000),
			P95: round4(float64(percentileUS(a.virtualUS, 95)) / 1000),
			P99: round4(float64(percentileUS(a.virtualUS, 99)) / 1000),
		},
	}
	if len(a.errorsByClass) > 0 {
		r.ErrorsByClass = a.errorsByClass
	}
	return r
}

func buildArtifact(meta SuiteMeta, agg map[string]*methodAgg) Artifact {
	art := Artifact{
		Version: ArtifactVersion,
		Seed:    meta.Seed,
		Quick:   meta.Quick,
		Methods: make(map[string]MethodReport, len(agg)),
	}
	for method, a := range agg {
		art.Methods[method] = a.report()
		art.Cells += a.n
	}
	return art
}

// percentileUS is the nearest-rank percentile over integer virtual
// latencies — integer in, integer out, no interpolation, so two runs over
// identical inputs can never differ in the last float bit.
func percentileUS(us []int64, p int) int64 {
	if len(us) == 0 {
		return 0
	}
	sorted := append([]int64(nil), us...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := (p*len(sorted) + 99) / 100 // ceil(p/100 * n)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// round4 rounds to 4 decimal places, normalizing negative zero.
func round4(f float64) float64 {
	r := math.Round(f*10_000) / 10_000
	if r == 0 {
		return 0
	}
	return r
}

// Summary renders a short human-readable table of the artifact (methods
// sorted by name).
func (a Artifact) Summary() string {
	methods := make([]string, 0, len(a.Methods))
	for m := range a.Methods {
		methods = append(methods, m)
	}
	sort.Strings(methods)
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "replay artifact: seed=%d quick=%v cells=%d\n", a.Seed, a.Quick, a.Cells)
	for _, m := range methods {
		r := a.Methods[m]
		fmt.Fprintf(&buf, "  %-8s n=%-4d acc=%7.3f%%  errs=%-3d drift=%-3d tokens=%-7d p95=%.1fms\n",
			m, r.N, r.Accuracy, r.Errors, r.AnswerDrift, r.TotalTokens(), r.Latency.P95)
	}
	return buf.String()
}
