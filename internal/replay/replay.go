package replay

import (
	"context"
	"fmt"
	"time"

	"repro/internal/answer"
	"repro/internal/bench"
	"repro/internal/kg"
	"repro/internal/metrics"
	"repro/internal/qa"
	"repro/internal/trace"
)

// RecordOptions configure suite recording.
type RecordOptions struct {
	// Seed pins the world/model seed (also stamped into the suite meta).
	Seed int64
	// Quick records against the small test-scale environment.
	Quick bool
	// Methods lists the registry methods to record; empty records the full
	// Table-II method set.
	Methods []string
	// Model is the model label (default bench.ModelGPT35).
	Model string
	// PerDataset caps how many questions of each dataset enter the suite
	// (0 = all). The committed CI suite keeps this small.
	PerDataset int
	// Note is stored in the suite meta as provenance.
	Note string
}

// DefaultMethods is the method set a suite records when none is given:
// the paper's Table-II comparison plus the ablation.
func DefaultMethods() []string {
	return []string{
		bench.MethodOurs, bench.MethodOursGp, bench.MethodToG,
		bench.MethodIO, bench.MethodCoT, bench.MethodSC, bench.MethodRAG,
	}
}

// RunOption adjusts the replay environment without touching the suite
// pin (seed/scale stay the suite's own).
type RunOption func(*bench.EnvConfig)

// WithANN routes the replayed suite's vector retrieval through the HNSW
// layer (ef = search beam, 0 = default). Replay artifacts are
// deterministic, so diffing an ANN run against an exact-scan baseline
// proves the approximate path changes nothing the suite can observe.
func WithANN(ef int) RunOption {
	return func(cfg *bench.EnvConfig) {
		cfg.Substrate.ANN.Enabled = true
		cfg.Substrate.ANN.EfSearch = ef
	}
}

// newEnv assembles the replay environment for a (seed, quick) pin. The
// answer cache stays off and no scheduler is configured: every replayed
// request must re-run its method for real, under no admission queueing.
func newEnv(seed int64, quick bool, opts ...RunOption) (*bench.Env, error) {
	cfg := bench.DefaultEnvConfig()
	if quick {
		cfg = bench.QuickEnvConfig()
	}
	cfg.WorldSeed = seed
	for _, opt := range opts {
		opt(&cfg)
	}
	return bench.NewEnv(cfg)
}

// RecordSuite answers every (dataset question, method) cell sequentially
// against a fresh environment and returns the suite: one Record per cell,
// carrying the question's gold material and deterministic IDs but no wall
// time. Recording is the only place answers enter the suite — replay
// never trusts them, it re-runs and re-scores.
func RecordSuite(ctx context.Context, opts RecordOptions) (Suite, error) {
	if opts.Model == "" {
		opts.Model = bench.ModelGPT35
	}
	if len(opts.Methods) == 0 {
		opts.Methods = DefaultMethods()
	}
	env, err := newEnv(opts.Seed, opts.Quick)
	if err != nil {
		return Suite{}, fmt.Errorf("replay: %w", err)
	}
	defer env.Close()

	s := Suite{Meta: SuiteMeta{
		Version: SuiteVersion, Seed: opts.Seed, Quick: opts.Quick, Note: opts.Note,
		// Pin the active prompt versions so replaying the suite restores
		// them even after prompt bumps land in the defaults.
		PromptVersions: env.Prompts.View().Versions(),
	}}
	for _, ds := range env.Suite.Datasets() {
		questions := ds.Questions
		if opts.PerDataset > 0 && len(questions) > opts.PerDataset {
			questions = questions[:opts.PerDataset]
		}
		src := bench.DefaultSource(ds.Name)
		for _, method := range opts.Methods {
			for _, q := range questions {
				rec, err := answerOne(ctx, env, method, opts.Model, src, q)
				if err != nil {
					return Suite{}, err
				}
				// Zero time: suite records deliberately carry no wall time.
				rec = rec.Stamp(fmt.Sprintf("r%06d", len(s.Records)+1), time.Time{})
				s.Records = append(s.Records, rec)
			}
		}
	}
	if len(s.Records) == 0 {
		return Suite{}, fmt.Errorf("replay: recorded an empty suite (no questions)")
	}
	return s, nil
}

// answerOne runs one (question, method) cell and builds its trace record
// with gold material attached. Method errors are recorded, not fatal —
// a suite can legitimately pin a failing cell.
func answerOne(ctx context.Context, env *bench.Env, method, model string, src kg.Source, q qa.Question) (trace.Record, error) {
	ans, err := env.Answerer(method, model, src)
	if err != nil {
		return trace.Record{}, fmt.Errorf("replay: %w", err)
	}
	query := buildQuery(method, model, q)
	res, runErr := ans.Answer(ctx, query)
	if ctx.Err() != nil {
		return trace.Record{}, fmt.Errorf("replay: %w", ctx.Err())
	}
	return trace.Build(query, res, runErr, trace.Meta{
		KG:    src.String(),
		Golds: q.Golds,
		Refs:  q.Refs,
	}), nil
}

// buildQuery maps a dataset question onto the unified request shape (the
// same mapping bench cells use).
func buildQuery(method, model string, q qa.Question) answer.Query {
	anchors := []string{q.Intent.Subject}
	if q.Intent.Subject2 != "" {
		anchors = append(anchors, q.Intent.Subject2)
	}
	return answer.Query{
		Text:    q.Text,
		Method:  method,
		Model:   model,
		Open:    q.Open(),
		Anchors: anchors,
	}
}

// Run replays a recorded suite against the current binary: a fresh
// environment pinned to the suite's seed and scale, every record re-run
// sequentially and re-scored against its recorded gold material. The
// returned artifact is deterministic — see the package comment for the
// contract.
func Run(ctx context.Context, s Suite, opts ...RunOption) (Artifact, error) {
	env, err := newEnv(s.Meta.Seed, s.Meta.Quick, opts...)
	if err != nil {
		return Artifact{}, fmt.Errorf("replay: %w", err)
	}
	defer env.Close()
	// Restore the prompt versions the suite was recorded under: a prompt
	// bump must show up as an explicit meta change, never as a silent
	// replay drift.
	if len(s.Meta.PromptVersions) > 0 {
		if err := env.Prompts.ApplyVersions(s.Meta.PromptVersions); err != nil {
			return Artifact{}, fmt.Errorf("replay: restoring suite prompt versions: %w", err)
		}
	}

	agg := map[string]*methodAgg{}
	for i, rec := range s.Records {
		src, err := kg.ParseSource(rec.KG)
		if err != nil || src == kg.SourceUnknown {
			return Artifact{}, fmt.Errorf("replay: record %s: bad kg %q", rec.ID, rec.KG)
		}
		ans, err := env.Answerer(rec.Method, rec.Model, src)
		if err != nil {
			return Artifact{}, fmt.Errorf("replay: record %s: %w", rec.ID, err)
		}
		query := answer.Query{
			Text:    rec.Question,
			Method:  rec.Method,
			Model:   rec.Model,
			Open:    rec.Open,
			Anchors: rec.Anchors,
		}
		res, runErr := ans.Answer(ctx, query)
		if ctx.Err() != nil {
			return Artifact{}, fmt.Errorf("replay: %w", ctx.Err())
		}
		cur := trace.Build(query, res, runErr, trace.Meta{KG: rec.KG, Golds: rec.Golds, Refs: rec.Refs})

		a := agg[rec.Method]
		if a == nil {
			a = newMethodAgg()
			agg[rec.Method] = a
		}
		a.add(s.Records[i], cur)
	}
	return buildArtifact(s.Meta, agg), nil
}

// scoreRecord evaluates a record's answer against its own gold material:
// ROUGE-L for open questions, Hit@1 otherwise.
func scoreRecord(rec trace.Record, answerText string) float64 {
	if rec.Open {
		return metrics.RougeLMulti(answerText, rec.Refs)
	}
	return metrics.Hit1(answerText, rec.Golds)
}
