// Package replay is the record/replay regression harness built on the
// trace store: it records an evaluation suite (dataset questions with
// gold material, answered by the current binary) as trace Records, and
// replays a recorded suite against the current binary with the simulated
// LLMs pinned to the suite's seed and scale. Replay produces a fully
// deterministic Artifact — per-method accuracy, token cost, virtual
// latency percentiles, error-class buckets — and Diff compares an
// artifact against a committed baseline under gate thresholds, which is
// what CI's replay-gate job runs.
//
// Determinism contract: replaying the same suite twice produces
// byte-identical artifacts. Everything nondeterministic is excluded by
// construction — runs are sequential, the answer cache is off, suite
// records carry no wall time, and latency percentiles are computed over a
// virtual latency model (a pure function of LLM calls and token counts)
// rather than measured wall time. Wall time still flows into live trace
// records and benchrun trajectory artifacts; it is only the regression
// gate that must not see it.
package replay

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/trace"
)

// SuiteVersion is the on-disk format version WriteSuite stamps.
const SuiteVersion = 1

// SuiteMeta is the header line of a suite file: the environment pin every
// replay of the suite must reproduce.
type SuiteMeta struct {
	// Version is the suite file format version.
	Version int `json:"suite_version"`
	// Seed is the world/model seed the suite was recorded under; replay
	// rebuilds the environment with the same seed so the simulated LLMs
	// and the generated KG match the recording.
	Seed int64 `json:"seed"`
	// Quick selects the small test-scale environment (true for the
	// committed CI suite; false for paper-scale recordings).
	Quick bool `json:"quick"`
	// PromptVersions pins the active prompt versions the suite was
	// recorded under (prompt name -> version string); replay applies them
	// to its registry before re-running, so a prompt bump cannot silently
	// change what a committed suite replays. Empty means the embedded
	// defaults' active set (pre-registry suites).
	PromptVersions map[string]string `json:"prompt_versions,omitempty"`
	// Note is free-form provenance (who recorded it, why).
	Note string `json:"note,omitempty"`
}

// Suite is a recorded evaluation suite: the environment pin plus one
// trace Record per (question, method) cell, each carrying its gold
// material.
type Suite struct {
	Meta    SuiteMeta
	Records []trace.Record
}

// WriteSuite serializes a suite: one meta header line, then one record
// per line in the trace codec. The write is atomic (temp file + rename)
// so a crashed recorder never leaves a torn suite behind.
func WriteSuite(path string, s Suite) error {
	s.Meta.Version = SuiteVersion
	tmp, err := os.CreateTemp(dirOf(path), ".suite-*")
	if err != nil {
		return fmt.Errorf("replay: %w", err)
	}
	defer os.Remove(tmp.Name())
	w := bufio.NewWriter(tmp)
	head, err := json.Marshal(s.Meta)
	if err != nil {
		return fmt.Errorf("replay: encoding suite meta: %w", err)
	}
	head = append(head, '\n')
	if _, err := w.Write(head); err != nil {
		return fmt.Errorf("replay: %w", err)
	}
	for i, rec := range s.Records {
		line, err := trace.Encode(rec)
		if err != nil {
			return fmt.Errorf("replay: encoding record %d: %w", i, err)
		}
		if _, err := w.Write(line); err != nil {
			return fmt.Errorf("replay: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("replay: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("replay: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("replay: %w", err)
	}
	return nil
}

// ReadSuite parses a suite file. Unlike the trace store's recovery (which
// tolerates torn tails on a live log), a suite is a committed artifact:
// any malformed line is a hard error.
func ReadSuite(path string) (Suite, error) {
	f, err := os.Open(path)
	if err != nil {
		return Suite{}, fmt.Errorf("replay: %w", err)
	}
	defer f.Close()
	return readSuite(f, path)
}

func readSuite(r io.Reader, path string) (Suite, error) {
	var s Suite
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return Suite{}, fmt.Errorf("replay: reading %s: %w", path, err)
		}
		return Suite{}, fmt.Errorf("replay: %s is empty (no suite meta line)", path)
	}
	if err := json.Unmarshal(sc.Bytes(), &s.Meta); err != nil {
		return Suite{}, fmt.Errorf("replay: %s meta line: %w", path, err)
	}
	if s.Meta.Version != SuiteVersion {
		return Suite{}, fmt.Errorf("replay: %s has suite version %d, this binary reads version %d", path, s.Meta.Version, SuiteVersion)
	}
	for line := 2; sc.Scan(); line++ {
		rec, err := trace.Decode(sc.Bytes())
		if err != nil {
			return Suite{}, fmt.Errorf("replay: %s line %d: %w", path, line, err)
		}
		s.Records = append(s.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return Suite{}, fmt.Errorf("replay: reading %s: %w", path, err)
	}
	if len(s.Records) == 0 {
		return Suite{}, fmt.Errorf("replay: %s holds no records", path)
	}
	return s, nil
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if os.IsPathSeparator(path[i]) {
			return path[:i+1]
		}
	}
	return "."
}
