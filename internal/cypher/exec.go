package cypher

import (
	"fmt"
	"sort"

	"repro/internal/propgraph"
)

// ExecError reports a runtime execution failure (e.g. relationship endpoint
// variable never bound).
type ExecError struct {
	Msg string
}

// Error implements error.
func (e *ExecError) Error() string { return "cypher: exec error: " + e.Msg }

// Executor runs parsed scripts against a property graph, maintaining the
// variable bindings that let later CREATE statements reference nodes
// created earlier — the pattern the paper's prompt examples rely on
// ("CREATE (andes:MountainRange ...)" then "CREATE (andes)-[:COVERS]->...").
type Executor struct {
	g *propgraph.Graph
	// vars maps Cypher variable name -> node ID.
	vars map[string]int
	// byName maps node display name -> node ID, letting a bare (x {name:
	// 'X'}) pattern reuse an existing node instead of duplicating it.
	byName map[string]int
}

// NewExecutor returns an executor over a fresh property graph.
func NewExecutor() *Executor {
	return &Executor{
		g:      propgraph.New(),
		vars:   make(map[string]int),
		byName: make(map[string]int),
	}
}

// Graph returns the property graph built so far.
func (e *Executor) Graph() *propgraph.Graph { return e.g }

// Run executes every statement in the script. MATCH statements are executed
// for their side-effect-free result, which Run discards; use Query for
// projections.
func (e *Executor) Run(s *Script) error {
	for _, st := range s.Statements {
		switch st := st.(type) {
		case *CreateStmt:
			if err := e.runCreate(st); err != nil {
				return err
			}
		case *MatchStmt:
			// No-op at build time.
		default:
			return &ExecError{Msg: fmt.Sprintf("unsupported statement %T", st)}
		}
	}
	return nil
}

func (e *Executor) runCreate(st *CreateStmt) error {
	for _, pat := range st.Patterns {
		ids := make([]int, len(pat.Nodes))
		for i, np := range pat.Nodes {
			id, err := e.resolveNode(np)
			if err != nil {
				return err
			}
			ids[i] = id
		}
		for i, rp := range pat.Rels {
			from, to := ids[i], ids[i+1]
			if rp.Dir == DirLeft {
				from, to = to, from
			}
			relType := rp.Type
			if relType == "" {
				return &ExecError{Msg: "relationship without a type"}
			}
			props := literalProps(rp.Props)
			if _, err := e.g.CreateRel(from, to, relType, props); err != nil {
				return &ExecError{Msg: err.Error()}
			}
		}
	}
	return nil
}

// resolveNode returns the node ID for a node pattern, creating the node if
// the pattern introduces one. Resolution rules, in order:
//
//  1. A bare variable reference (no labels, no props) must already be
//     bound; otherwise, if a prior node's name equals the variable text, it
//     binds to that (LLMs sometimes reuse a node's name as a variable).
//  2. A pattern with content creates a node — unless a node with the same
//     display name already exists, in which case properties are merged into
//     it (MERGE-like behaviour that keeps pseudo-graphs compact).
func (e *Executor) resolveNode(np NodePattern) (int, error) {
	bare := len(np.Labels) == 0 && len(np.Props) == 0
	if np.Var != "" {
		if id, ok := e.vars[np.Var]; ok {
			if !bare {
				e.mergeProps(id, np)
			}
			return id, nil
		}
		if bare {
			if id, ok := e.byName[np.Var]; ok {
				e.vars[np.Var] = id
				return id, nil
			}
			return 0, &ExecError{Msg: fmt.Sprintf("unbound variable %q", np.Var)}
		}
	} else if bare {
		return 0, &ExecError{Msg: "anonymous node pattern with no content"}
	}
	props := literalProps(np.Props)
	// Name-based reuse.
	if nameV, ok := props["name"]; ok {
		if id, exists := e.byName[nameV.String()]; exists {
			e.mergeProps(id, np)
			if np.Var != "" {
				e.vars[np.Var] = id
			}
			return id, nil
		}
	}
	n := e.g.CreateNode(np.Labels, props)
	if np.Var != "" {
		e.vars[np.Var] = n.ID
	}
	if name := n.Name(); name != "" {
		if _, exists := e.byName[name]; !exists {
			e.byName[name] = n.ID
		}
	}
	return n.ID, nil
}

// mergeProps adds the pattern's labels/properties to an existing node
// without overwriting established values.
func (e *Executor) mergeProps(id int, np NodePattern) {
	n, ok := e.g.Node(id)
	if !ok {
		return
	}
	for _, l := range np.Labels {
		if !n.HasLabel(l) {
			n.Labels = append(n.Labels, l)
		}
	}
	for _, p := range np.Props {
		if _, exists := n.Props[p.Key]; !exists {
			n.Props[p.Key] = literalValue(p.Value)
		}
	}
}

func literalProps(props []Property) map[string]propgraph.Value {
	out := make(map[string]propgraph.Value, len(props))
	for _, p := range props {
		out[p.Key] = literalValue(p.Value)
	}
	return out
}

func literalValue(l Literal) propgraph.Value {
	switch l.Kind {
	case LitInt:
		return propgraph.IntValue(l.Int)
	case LitFloat:
		return propgraph.FloatValue(l.Flt)
	case LitBool:
		return propgraph.BoolValue(l.Bool)
	default:
		return propgraph.StringValue(l.Str)
	}
}

// QueryRow is one row of a MATCH ... RETURN projection.
type QueryRow struct {
	Values []string
}

// Query evaluates a MATCH statement against the executor's graph and
// returns projected rows. The matcher supports single-node patterns and
// single-hop relationship patterns with label/type filters, WHERE
// conjunctions over bound variables' properties, ORDER BY one projection,
// and LIMIT — enough for the interactive shell and tooling.
func (e *Executor) Query(st *MatchStmt) ([]QueryRow, error) {
	pat := st.Pattern
	var rows []QueryRow
	var err error
	switch len(pat.Nodes) {
	case 1:
		rows, err = e.queryNodes(pat.Nodes[0], st)
	case 2:
		rows, err = e.queryHop(pat, st)
	default:
		return nil, &ExecError{Msg: "MATCH supports at most one relationship hop"}
	}
	if err != nil {
		return nil, err
	}
	if st.OrderBy.Var != "" {
		if err := orderRows(rows, st); err != nil {
			return nil, err
		}
	}
	if st.Limit > 0 && len(rows) > st.Limit {
		rows = rows[:st.Limit]
	}
	return rows, nil
}

// matchesWhere evaluates the WHERE conjunction against a binding.
func matchesWhere(bind map[string]*propgraph.Node, conds []Condition) (bool, error) {
	for _, c := range conds {
		n, ok := bind[c.Var]
		if !ok {
			return false, &ExecError{Msg: fmt.Sprintf("WHERE references unbound variable %q", c.Var)}
		}
		v, ok := n.Props[c.Property]
		if !ok {
			return false, nil // missing property never matches
		}
		if !compareValues(v, c.Op, literalValue(c.Value)) {
			return false, nil
		}
	}
	return true, nil
}

// compareValues applies an operator; numeric comparisons widen ints, and
// numeric-looking strings (the world's literal facts) compare numerically
// against numeric literals. Everything else compares as strings.
func compareValues(a propgraph.Value, op CompareOp, b propgraph.Value) bool {
	af, aNum := numericView(a)
	bf, bNum := numericView(b)
	if aNum && bNum {
		switch op {
		case OpEq:
			return af == bf
		case OpNe:
			return af != bf
		case OpLt:
			return af < bf
		case OpLe:
			return af <= bf
		case OpGt:
			return af > bf
		case OpGe:
			return af >= bf
		}
	}
	as, bs := a.String(), b.String()
	switch op {
	case OpEq:
		return as == bs
	case OpNe:
		return as != bs
	case OpLt:
		return as < bs
	case OpLe:
		return as <= bs
	case OpGt:
		return as > bs
	case OpGe:
		return as >= bs
	}
	return false
}

// numericView widens a value to float64 when it is numeric or a
// numeric-shaped string.
func numericView(v propgraph.Value) (float64, bool) {
	if f, ok := v.AsFloat(); ok {
		return f, true
	}
	if s, ok := v.AsString(); ok {
		var f float64
		if _, err := fmt.Sscanf(s, "%g", &f); err == nil && fmt.Sprintf("%g", f) != "" {
			// Require the whole string to be numeric.
			var rest string
			if n, _ := fmt.Sscanf(s, "%g%s", &f, &rest); n == 1 {
				return f, true
			}
		}
	}
	return 0, false
}

// orderRows sorts rows by the ORDER BY projection, which must be one of
// the RETURN items; numeric-shaped cells compare numerically.
func orderRows(rows []QueryRow, st *MatchStmt) error {
	col := -1
	for i, item := range st.Returns {
		if item == st.OrderBy {
			col = i
			break
		}
	}
	if col < 0 {
		return &ExecError{Msg: fmt.Sprintf("ORDER BY %s must appear in RETURN", st.OrderBy.Render())}
	}
	less := func(a, b string) bool {
		av, aNum := numericView(propgraph.StringValue(a))
		bv, bNum := numericView(propgraph.StringValue(b))
		if aNum && bNum {
			return av < bv
		}
		return a < b
	}
	sort.SliceStable(rows, func(i, j int) bool {
		a, b := rows[i].Values[col], rows[j].Values[col]
		if st.OrderDesc {
			return less(b, a)
		}
		return less(a, b)
	})
	return nil
}

func nodeMatches(n *propgraph.Node, np NodePattern) bool {
	for _, l := range np.Labels {
		if !n.HasLabel(l) {
			return false
		}
	}
	for _, p := range np.Props {
		v, ok := n.Props[p.Key]
		if !ok || !v.Equal(literalValue(p.Value)) {
			return false
		}
	}
	return true
}

func (e *Executor) project(bind map[string]*propgraph.Node, items []ReturnItem) (QueryRow, error) {
	var row QueryRow
	for _, it := range items {
		if it.Var == "*" {
			for _, n := range bind {
				row.Values = append(row.Values, n.Name())
			}
			continue
		}
		n, ok := bind[it.Var]
		if !ok {
			return row, &ExecError{Msg: fmt.Sprintf("RETURN references unbound variable %q", it.Var)}
		}
		if it.Property == "" {
			row.Values = append(row.Values, n.Name())
			continue
		}
		v, ok := n.Props[it.Property]
		if !ok {
			row.Values = append(row.Values, "")
			continue
		}
		row.Values = append(row.Values, v.String())
	}
	return row, nil
}

func (e *Executor) queryNodes(np NodePattern, st *MatchStmt) ([]QueryRow, error) {
	var rows []QueryRow
	for _, n := range e.g.Nodes() {
		if !nodeMatches(n, np) {
			continue
		}
		bind := map[string]*propgraph.Node{}
		if np.Var != "" {
			bind[np.Var] = n
		}
		ok, err := matchesWhere(bind, st.Where)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		row, err := e.project(bind, st.Returns)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func (e *Executor) queryHop(pat Pattern, st *MatchStmt) ([]QueryRow, error) {
	rp := pat.Rels[0]
	left, right := pat.Nodes[0], pat.Nodes[1]
	var rows []QueryRow
	for _, r := range e.g.Rels() {
		if rp.Type != "" && r.Type != rp.Type {
			continue
		}
		fromN, _ := e.g.Node(r.From)
		toN, _ := e.g.Node(r.To)
		a, b := fromN, toN
		if rp.Dir == DirLeft {
			a, b = toN, fromN
		}
		if !nodeMatches(a, left) || !nodeMatches(b, right) {
			continue
		}
		bind := map[string]*propgraph.Node{}
		if left.Var != "" {
			bind[left.Var] = a
		}
		if right.Var != "" {
			bind[right.Var] = b
		}
		ok, err := matchesWhere(bind, st.Where)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		row, err := e.project(bind, st.Returns)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}
