package cypher

import (
	"strings"
	"testing"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex("CREATE (a:Lake {name: 'Lake Superior', area: 82000})")
	if err != nil {
		t.Fatal(err)
	}
	kinds := make([]TokenKind, len(toks))
	for i, tok := range toks {
		kinds[i] = tok.Kind
	}
	want := []TokenKind{
		TokIdent, TokLParen, TokIdent, TokColon, TokIdent, TokLBrace,
		TokIdent, TokColon, TokString, TokComma, TokIdent, TokColon,
		TokNumber, TokRBrace, TokRParen, TokEOF,
	}
	if len(kinds) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(kinds), len(want), toks)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestLexComments(t *testing.T) {
	toks, err := Lex("// a comment line\nCREATE (a:X)")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokIdent || toks[0].Text != "CREATE" {
		t.Errorf("comment not skipped: %v", toks[0])
	}
}

func TestLexStringEscapes(t *testing.T) {
	toks, err := Lex(`CREATE (a {name: 'it\'s here', note: "say \"hi\""})`)
	if err != nil {
		t.Fatal(err)
	}
	var strs []string
	for _, tok := range toks {
		if tok.Kind == TokString {
			strs = append(strs, tok.Text)
		}
	}
	if len(strs) != 2 || strs[0] != "it's here" || strs[1] != `say "hi"` {
		t.Errorf("escapes wrong: %q", strs)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{
		"CREATE (a {name: 'unterminated",
		"CREATE (a:`backtick",
	} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) should fail", src)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("CREATE\n  (a)")
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Line != 2 || toks[1].Col != 3 {
		t.Errorf("position of '(' = %d:%d, want 2:3", toks[1].Line, toks[1].Col)
	}
}

func TestParsePaperExample1(t *testing.T) {
	// Fig. 3 example 1 (lakes with area properties).
	src := `
CREATE (superior:Lake {name: 'Lake Superior', area: 82000})
CREATE (michigan:Lake {name: 'Lake Michigan', area: 58000})
CREATE (huron:Lake {name: 'Lake Huron', area: 23000})
`
	script, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(script.Statements) != 3 {
		t.Fatalf("got %d statements, want 3", len(script.Statements))
	}
	cs, ok := script.Statements[0].(*CreateStmt)
	if !ok || len(cs.Patterns) != 1 {
		t.Fatalf("statement 0: %#v", script.Statements[0])
	}
	n := cs.Patterns[0].Nodes[0]
	if n.Var != "superior" || n.Labels[0] != "Lake" || len(n.Props) != 2 {
		t.Errorf("node pattern wrong: %+v", n)
	}
	if n.Props[1].Key != "area" || n.Props[1].Value.Int != 82000 {
		t.Errorf("area property wrong: %+v", n.Props[1])
	}
}

func TestParsePaperExample2(t *testing.T) {
	// Fig. 3 example 2 (mountain ranges covering countries), including
	// variable reuse across statements.
	src := `
CREATE (andes:MountainRange {name: "Andes"})
CREATE (himalayas:MountainRange {name: "Himalayas"})
CREATE (andes)-[:COVERS]->(peru:Country {name: "Peru"})
CREATE (himalayas)-[:COVERS]->(india:Country {name: "India"})
CREATE (andes)-[:KNOWN_FOR]->(climbing:Concept {name: "Mountain Climbing"})
CREATE (himalayas)-[:KNOWN_FOR]->(climbing)
`
	g, err := Decode(src)
	if err != nil {
		t.Fatal(err)
	}
	wantRels := map[string]bool{
		"<Andes> <covers> <Peru>":                     true,
		"<Himalayas> <covers> <India>":                true,
		"<Andes> <known for> <Mountain Climbing>":     true,
		"<Himalayas> <known for> <Mountain Climbing>": true,
	}
	found := 0
	for _, tr := range g.Triples {
		if wantRels[tr.String()] {
			found++
		}
	}
	if found != len(wantRels) {
		t.Errorf("decoded triples missing expected relationships:\n%s", g)
	}
}

func TestParseMultiPatternCreate(t *testing.T) {
	script, err := Parse("CREATE (a:X {name:'a'}), (b:Y {name:'b'}), (a)-[:R]->(b)")
	if err != nil {
		t.Fatal(err)
	}
	cs := script.Statements[0].(*CreateStmt)
	if len(cs.Patterns) != 3 {
		t.Errorf("got %d patterns, want 3", len(cs.Patterns))
	}
}

func TestParseMultiHopChain(t *testing.T) {
	script, err := Parse("CREATE (a {name:'a'})-[:R1]->(b {name:'b'})-[:R2]->(c {name:'c'})")
	if err != nil {
		t.Fatal(err)
	}
	pat := script.Statements[0].(*CreateStmt).Patterns[0]
	if len(pat.Nodes) != 3 || len(pat.Rels) != 2 {
		t.Errorf("chain shape: %d nodes %d rels", len(pat.Nodes), len(pat.Rels))
	}
}

func TestParseLeftArrow(t *testing.T) {
	g, err := Decode("CREATE (a {name:'A'})<-[:MADE_BY]-(b {name:'B'})")
	if err != nil {
		t.Fatal(err)
	}
	want := "<B> <made by> <A>"
	found := false
	for _, tr := range g.Triples {
		if tr.String() == want {
			found = true
		}
	}
	if !found {
		t.Errorf("left arrow direction wrong:\n%s", g)
	}
}

func TestParseMergeTreatedAsCreate(t *testing.T) {
	g, err := Decode("MERGE (a:City {name:'Paris', population: 2000000})")
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 1 || g.Triples[0].Relation != "population" {
		t.Errorf("MERGE decode: %s", g)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"",                      // empty
		"DELETE (a)",            // unsupported statement
		"CREATE (a",             // unterminated node
		"CREATE (a)-[:R](b)",    // missing arrow close
		"CREATE (a)-[:R]->",     // dangling rel
		"CREATE (a {name 'x'})", // missing colon
		"MATCH (a)",             // missing RETURN
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestExecutorUnboundVariable(t *testing.T) {
	script, err := Parse("CREATE (a)-[:R]->(b)")
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor()
	if err := ex.Run(script); err == nil {
		t.Error("unbound endpoint variables should fail execution")
	}
}

func TestExecutorNameBasedReuse(t *testing.T) {
	// Two statements introduce the same display name: the executor must
	// merge rather than duplicate, so decoded triples stay compact.
	src := `
CREATE (x:Person {name: 'Ada'})
CREATE (y:Person {name: 'Ada', born: 1815})
`
	g, err := Decode(src)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 1 || g.Triples[0].String() != "<Ada> <born> <1815>" {
		t.Errorf("name-based merge failed:\n%s", g)
	}
}

func TestExecutorRelWithoutType(t *testing.T) {
	script, err := Parse("CREATE (a {name:'a'})-[r]->(b {name:'b'})")
	if err != nil {
		t.Fatal(err)
	}
	if err := NewExecutor().Run(script); err == nil {
		t.Error("typeless relationship should fail execution")
	}
}

func TestDecodeLiteralProperties(t *testing.T) {
	g, err := Decode("CREATE (c:City {name: 'Oslo', population: 700000, coastal: true, rating: 4.5})")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"population": "700000",
		"coastal":    "true",
		"rating":     "4.5",
	}
	if g.Len() != len(want) {
		t.Fatalf("decoded %d triples, want %d:\n%s", g.Len(), len(want), g)
	}
	for _, tr := range g.Triples {
		if tr.Subject != "Oslo" {
			t.Errorf("subject = %q", tr.Subject)
		}
		if want[tr.Relation] != tr.Object {
			t.Errorf("%s = %q, want %q", tr.Relation, tr.Object, want[tr.Relation])
		}
	}
}

func TestValidate(t *testing.T) {
	if !Validate("CREATE (a:X {name: 'a', v: 1})") {
		t.Error("valid script rejected")
	}
	if Validate("CREATE (a:X {name: 'a', v: 1}") { // missing paren
		t.Error("invalid script accepted")
	}
	if Validate("CREATE (a)") { // executes to zero triples
		t.Error("empty-yield script should not validate")
	}
}

func TestQuerySingleNode(t *testing.T) {
	script, err := Parse(`
CREATE (a:Lake {name: 'Lake Superior', area: 82000})
CREATE (b:Lake {name: 'Lake Huron', area: 23000})
MATCH (l:Lake) RETURN l.name, l.area
`)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor()
	if err := ex.Run(script); err != nil {
		t.Fatal(err)
	}
	match := script.Statements[2].(*MatchStmt)
	rows, err := ex.Query(match)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	if rows[0].Values[0] != "Lake Superior" || rows[0].Values[1] != "82000" {
		t.Errorf("row 0 = %v", rows[0].Values)
	}
}

func TestQueryOneHop(t *testing.T) {
	script, err := Parse(`
CREATE (andes:Range {name:'Andes'})
CREATE (andes)-[:COVERS]->(peru:Country {name:'Peru'})
CREATE (andes)-[:COVERS]->(chile:Country {name:'Chile'})
MATCH (r:Range)-[:COVERS]->(c:Country) RETURN c.name
`)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor()
	if err := ex.Run(script); err != nil {
		t.Fatal(err)
	}
	rows, err := ex.Query(script.Statements[3].(*MatchStmt))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
}

func TestRenderRoundTrip(t *testing.T) {
	srcs := []string{
		"CREATE (a:Lake {name: 'Lake Superior', area: 82000})",
		"CREATE (a:X {name: 'a'})-[:REL_TYPE]->(b:Y {name: 'b'})",
		`CREATE (a:X {name: 'a'}), (b:Y {name: 'b'})`,
	}
	for _, src := range srcs {
		s1, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		rendered := s1.Render()
		s2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", rendered, err)
		}
		if s1.Render() != s2.Render() {
			t.Errorf("render not stable:\n%s\nvs\n%s", s1.Render(), s2.Render())
		}
	}
}

func TestDecodeCaseHumanisation(t *testing.T) {
	g, err := Decode("CREATE (a {name:'A'})-[:PLACE_OF_BIRTH]->(b {name:'B'})")
	if err != nil {
		t.Fatal(err)
	}
	if g.Triples[0].Relation != "place of birth" {
		t.Errorf("relation humanisation: %q", g.Triples[0].Relation)
	}
}

func TestQuotedPropertyKeys(t *testing.T) {
	g, err := Decode(`CREATE (a {name:'A', 'date of birth': '1927-09-04'})`)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tr := range g.Triples {
		if tr.Relation == "date of birth" && tr.Object == "1927-09-04" {
			found = true
		}
	}
	if !found {
		t.Errorf("quoted key lost:\n%s", g)
	}
}

func TestNegativeAndUnderscoreNumbers(t *testing.T) {
	g, err := Decode("CREATE (a {name:'A', delta: -42, big: 1_000_000})")
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]string{}
	for _, tr := range g.Triples {
		vals[tr.Relation] = tr.Object
	}
	if vals["delta"] != "-42" || vals["big"] != "1000000" {
		t.Errorf("numeric literals: %v", vals)
	}
}

func TestFencedDecodeViaLines(t *testing.T) {
	// The executor must cope with scripts whose statements are separated
	// by semicolons as well as newlines.
	g, err := Decode("CREATE (a:X {name:'a', v: 1}); CREATE (b:X {name:'b', v: 2})")
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 2 {
		t.Errorf("got %d triples, want 2:\n%s", g.Len(), g)
	}
}

func TestErrorMessagesCarryPosition(t *testing.T) {
	_, err := Parse("CREATE (a:X {name: 'a'})\nCREATE (b:")
	if err == nil {
		t.Fatal("expected parse error")
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Errorf("error lacks line info: %v", err)
	}
}

func TestQueryWhere(t *testing.T) {
	script, err := Parse(`
CREATE (a:Lake {name: 'Lake Superior', area: 82000})
CREATE (b:Lake {name: 'Lake Huron', area: 23000})
CREATE (c:Lake {name: 'Lake Erie', area: 9600})
MATCH (l:Lake) WHERE l.area > 20000 RETURN l.name
`)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor()
	if err := ex.Run(script); err != nil {
		t.Fatal(err)
	}
	rows, err := ex.Query(script.Statements[3].(*MatchStmt))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("WHERE returned %d rows, want 2: %v", len(rows), rows)
	}
}

func TestQueryWhereConjunction(t *testing.T) {
	script, err := Parse(`
CREATE (a:Lake {name: 'Lake Superior', area: 82000})
CREATE (b:Lake {name: 'Lake Huron', area: 23000})
MATCH (l:Lake) WHERE l.area > 20000 AND l.name <> 'Lake Huron' RETURN l.name
`)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor()
	if err := ex.Run(script); err != nil {
		t.Fatal(err)
	}
	rows, err := ex.Query(script.Statements[2].(*MatchStmt))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Values[0] != "Lake Superior" {
		t.Fatalf("conjunction rows = %v", rows)
	}
}

func TestQueryWhereStringNumericCoercion(t *testing.T) {
	// The world's literal facts are strings; numeric WHERE must coerce.
	script, err := Parse(`
CREATE (a:City {name: 'X', population: '2000000'})
CREATE (b:City {name: 'Y', population: '500'})
MATCH (c:City) WHERE c.population >= 1000 RETURN c.name
`)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor()
	if err := ex.Run(script); err != nil {
		t.Fatal(err)
	}
	rows, err := ex.Query(script.Statements[2].(*MatchStmt))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Values[0] != "X" {
		t.Fatalf("coercion rows = %v", rows)
	}
}

func TestQueryOrderByAndLimit(t *testing.T) {
	script, err := Parse(`
CREATE (a:Lake {name: 'A', area: 23000})
CREATE (b:Lake {name: 'B', area: 82000})
CREATE (c:Lake {name: 'C', area: 9600})
MATCH (l:Lake) RETURN l.name, l.area ORDER BY l.area DESC LIMIT 2
`)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor()
	if err := ex.Run(script); err != nil {
		t.Fatal(err)
	}
	rows, err := ex.Query(script.Statements[3].(*MatchStmt))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Values[0] != "B" || rows[1].Values[0] != "A" {
		t.Fatalf("order/limit rows = %v", rows)
	}
}

func TestQueryOrderByMustBeProjected(t *testing.T) {
	script, err := Parse(`
CREATE (a:Lake {name: 'A', area: 1})
MATCH (l:Lake) RETURN l.name ORDER BY l.area
`)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor()
	if err := ex.Run(script); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Query(script.Statements[1].(*MatchStmt)); err == nil {
		t.Error("ORDER BY on unprojected item should fail")
	}
}

func TestQueryWhereUnboundVar(t *testing.T) {
	script, err := Parse(`
CREATE (a:Lake {name: 'A', area: 1})
MATCH (l:Lake) WHERE z.area > 0 RETURN l.name
`)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor()
	if err := ex.Run(script); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Query(script.Statements[1].(*MatchStmt)); err == nil {
		t.Error("WHERE on unbound variable should fail")
	}
}

func TestMatchRenderWithWhereOrderLimit(t *testing.T) {
	src := "MATCH (l:Lake) WHERE l.area >= 100 AND l.name <> 'X' RETURN l.name, l.area ORDER BY l.area DESC LIMIT 5"
	script, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	rendered := script.Render()
	reparsed, err := Parse(rendered)
	if err != nil {
		t.Fatalf("re-parse of %q: %v", rendered, err)
	}
	if reparsed.Render() != rendered {
		t.Errorf("render not stable:\n%s\nvs\n%s", rendered, reparsed.Render())
	}
}
