package cypher

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// genScript builds a random valid Cypher script from a seed: nodes with
// random labels/properties plus relationships among already-bound
// variables. Used to property-test Parse/Render/Decode.
func genScript(seed int64) (string, int) {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	nodes := 1 + rng.Intn(5)
	stmts := 0
	for i := 0; i < nodes; i++ {
		fmt.Fprintf(&b, "CREATE (n%d:Label%d {name: 'Entity %d', value: %d})\n",
			i, rng.Intn(3), i, rng.Intn(1000))
		stmts++
	}
	rels := rng.Intn(5)
	for i := 0; i < rels; i++ {
		from, to := rng.Intn(nodes), rng.Intn(nodes)
		fmt.Fprintf(&b, "CREATE (n%d)-[:REL_%d]->(n%d)\n", from, rng.Intn(4), to)
		stmts++
	}
	return b.String(), stmts
}

// TestParseRenderStableProperty: for random valid scripts, Render is a
// fixpoint of Parse∘Render.
func TestParseRenderStableProperty(t *testing.T) {
	f := func(seed int64) bool {
		src, stmts := genScript(seed)
		s1, err := Parse(src)
		if err != nil {
			t.Logf("Parse failed on generated script:\n%s", src)
			return false
		}
		if len(s1.Statements) != stmts {
			return false
		}
		r1 := s1.Render()
		s2, err := Parse(r1)
		if err != nil {
			t.Logf("re-Parse failed on rendered script:\n%s", r1)
			return false
		}
		return s2.Render() == r1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestDecodeCountsProperty: decoding a generated script yields one property
// triple per non-name node property plus one per relationship with named
// endpoints (nodes here always have names).
func TestDecodeCountsProperty(t *testing.T) {
	f := func(seed int64) bool {
		src, _ := genScript(seed)
		nodes := strings.Count(src, "{name:")
		rels := strings.Count(src, "]->")
		g, err := Decode(src)
		if err != nil {
			return false
		}
		// Each node contributes its "value" property; each rel one triple.
		return g.Len() == nodes+rels
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestLexNeverPanics: the lexer must return errors, not panic, on
// arbitrary byte soup.
func TestLexNeverPanics(t *testing.T) {
	f := func(src string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Lex panicked on %q: %v", src, r)
			}
		}()
		_, _ = Lex(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestParseNeverPanics: same for the parser.
func TestParseNeverPanics(t *testing.T) {
	f := func(src string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Parse panicked on %q: %v", src, r)
			}
		}()
		_, _ = Parse(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestDecodeNeverPanicsOnCorruptions: every corruption mode the simulated
// LLM can inject must fail cleanly.
func TestDecodeNeverPanicsOnCorruptions(t *testing.T) {
	base := "CREATE (a:X {name: 'Entity A', v: 1})\nCREATE (a)-[:REL]->(b:Y {name: 'Entity B'})"
	corruptions := []string{
		base[:len(base)-1],                                            // truncated
		strings.Replace(base, "]->", "]>", 1),                         // broken arrow
		strings.Replace(base, "'Entity A'", "'Entity A", 1),           // unterminated string
		strings.Replace(base, "(a:X", "(a:X", 1) + "\nCREATE (broken", // dangling
		"",
		"CREATE",
		"<not cypher at all>",
	}
	for _, src := range corruptions {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Decode panicked on %q: %v", src, r)
				}
			}()
			_, _ = Decode(src)
		}()
	}
}
