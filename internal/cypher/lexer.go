// Package cypher implements the Cypher-subset language engine that stands
// in for Neo4j in the Pseudo-Graph Generation step. The subset covers what
// the paper's prompts elicit from the LLM (Figs. 2–3): CREATE statements
// over node patterns with labels and property maps, relationship patterns
// with typed arrows, comma-separated pattern lists, line comments, plus a
// small MATCH/RETURN form used by tooling.
//
// The package is organised conventionally: lexer (this file) → parser
// (parser.go, producing the AST in ast.go) → executor (exec.go, building a
// propgraph.Graph) → decoder (decode.go, flattening to kg triples).
package cypher

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind enumerates lexical token classes.
type TokenKind int

const (
	TokEOF TokenKind = iota
	TokIdent
	TokString
	TokNumber
	TokLParen
	TokRParen
	TokLBrace
	TokRBrace
	TokLBracket
	TokRBracket
	TokColon
	TokComma
	TokDot
	TokDash      // -
	TokArrowTail // ->
	TokArrowHead // <-
	TokEquals
	TokSemicolon
	TokStar
	TokLt // <
	TokLe // <=
	TokGt // >
	TokGe // >=
	TokNe // <>
)

// String names the token kind for error messages.
func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "end of input"
	case TokIdent:
		return "identifier"
	case TokString:
		return "string"
	case TokNumber:
		return "number"
	case TokLParen:
		return "'('"
	case TokRParen:
		return "')'"
	case TokLBrace:
		return "'{'"
	case TokRBrace:
		return "'}'"
	case TokLBracket:
		return "'['"
	case TokRBracket:
		return "']'"
	case TokColon:
		return "':'"
	case TokComma:
		return "','"
	case TokDot:
		return "'.'"
	case TokDash:
		return "'-'"
	case TokArrowTail:
		return "'->'"
	case TokArrowHead:
		return "'<-'"
	case TokEquals:
		return "'='"
	case TokSemicolon:
		return "';'"
	case TokStar:
		return "'*'"
	case TokLt:
		return "'<'"
	case TokLe:
		return "'<='"
	case TokGt:
		return "'>'"
	case TokGe:
		return "'>='"
	case TokNe:
		return "'<>'"
	default:
		return "unknown token"
	}
}

// Token is one lexical unit with its source position (1-based line/column).
type Token struct {
	Kind TokenKind
	Text string
	Line int
	Col  int
}

// LexError reports a lexical error with position.
type LexError struct {
	Line, Col int
	Msg       string
}

// Error implements error.
func (e *LexError) Error() string {
	return fmt.Sprintf("cypher: lex error at %d:%d: %s", e.Line, e.Col, e.Msg)
}

// Lex tokenises src. Line comments (// ...) and whitespace are skipped.
// Both single- and double-quoted strings are accepted (LLM output mixes
// them); backslash escapes \" \' \\ \n \t are honoured.
func Lex(src string) ([]Token, error) {
	var toks []Token
	line, col := 1, 1
	i := 0
	n := len(src)
	advance := func(k int) {
		for j := 0; j < k; j++ {
			if src[i+j] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
		}
		i += k
	}
	emit := func(kind TokenKind, text string, l, c int) {
		toks = append(toks, Token{Kind: kind, Text: text, Line: l, Col: c})
	}
	for i < n {
		c := src[i]
		startLine, startCol := line, col
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			advance(1)
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				advance(1)
			}
		case c == '(':
			emit(TokLParen, "(", startLine, startCol)
			advance(1)
		case c == ')':
			emit(TokRParen, ")", startLine, startCol)
			advance(1)
		case c == '{':
			emit(TokLBrace, "{", startLine, startCol)
			advance(1)
		case c == '}':
			emit(TokRBrace, "}", startLine, startCol)
			advance(1)
		case c == '[':
			emit(TokLBracket, "[", startLine, startCol)
			advance(1)
		case c == ']':
			emit(TokRBracket, "]", startLine, startCol)
			advance(1)
		case c == ':':
			emit(TokColon, ":", startLine, startCol)
			advance(1)
		case c == ',':
			emit(TokComma, ",", startLine, startCol)
			advance(1)
		case c == ';':
			emit(TokSemicolon, ";", startLine, startCol)
			advance(1)
		case c == '=':
			emit(TokEquals, "=", startLine, startCol)
			advance(1)
		case c == '*':
			emit(TokStar, "*", startLine, startCol)
			advance(1)
		case c == '.':
			emit(TokDot, ".", startLine, startCol)
			advance(1)
		case c == '-':
			if i+1 < n && src[i+1] == '>' {
				emit(TokArrowTail, "->", startLine, startCol)
				advance(2)
			} else if i+1 < n && (src[i+1] >= '0' && src[i+1] <= '9') {
				// Negative number literal.
				j := i + 1
				for j < n && isNumChar(src[j]) {
					j++
				}
				emit(TokNumber, src[i:j], startLine, startCol)
				advance(j - i)
			} else {
				emit(TokDash, "-", startLine, startCol)
				advance(1)
			}
		case c == '<':
			switch {
			case i+1 < n && src[i+1] == '-':
				emit(TokArrowHead, "<-", startLine, startCol)
				advance(2)
			case i+1 < n && src[i+1] == '=':
				emit(TokLe, "<=", startLine, startCol)
				advance(2)
			case i+1 < n && src[i+1] == '>':
				emit(TokNe, "<>", startLine, startCol)
				advance(2)
			default:
				emit(TokLt, "<", startLine, startCol)
				advance(1)
			}
		case c == '>':
			if i+1 < n && src[i+1] == '=' {
				emit(TokGe, ">=", startLine, startCol)
				advance(2)
			} else {
				emit(TokGt, ">", startLine, startCol)
				advance(1)
			}
		case c == '\'' || c == '"':
			quote := c
			var b strings.Builder
			j := i + 1
			closed := false
			consumed := 1
			for j < n {
				ch := src[j]
				if ch == '\\' && j+1 < n {
					esc := src[j+1]
					switch esc {
					case 'n':
						b.WriteByte('\n')
					case 't':
						b.WriteByte('\t')
					default:
						b.WriteByte(esc)
					}
					j += 2
					consumed += 2
					continue
				}
				if ch == quote {
					closed = true
					consumed++
					j++
					break
				}
				b.WriteByte(ch)
				j++
				consumed++
			}
			if !closed {
				return nil, &LexError{startLine, startCol, "unterminated string literal"}
			}
			emit(TokString, b.String(), startLine, startCol)
			advance(consumed)
		case c >= '0' && c <= '9':
			j := i
			for j < n && isNumChar(src[j]) {
				j++
			}
			emit(TokNumber, src[i:j], startLine, startCol)
			advance(j - i)
		case isIdentStart(rune(c)):
			j := i
			for j < n && isIdentChar(rune(src[j])) {
				j++
			}
			emit(TokIdent, src[i:j], startLine, startCol)
			advance(j - i)
		case c == '`':
			// Backtick-quoted identifier (Neo4j escape form).
			j := i + 1
			for j < n && src[j] != '`' {
				j++
			}
			if j >= n {
				return nil, &LexError{startLine, startCol, "unterminated backtick identifier"}
			}
			emit(TokIdent, src[i+1:j], startLine, startCol)
			advance(j - i + 1)
		default:
			return nil, &LexError{startLine, startCol, fmt.Sprintf("unexpected character %q", c)}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Line: line, Col: col})
	return toks, nil
}

func isNumChar(c byte) bool {
	return (c >= '0' && c <= '9') || c == '.' || c == '_'
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentChar(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}
