package cypher

import (
	"fmt"
	"strings"
)

// Script is a parsed Cypher program: a sequence of statements.
type Script struct {
	Statements []Statement
}

// Statement is a top-level Cypher statement.
type Statement interface {
	stmt()
	// Render produces canonical Cypher text (used by tests and tooling).
	Render() string
}

// CreateStmt is CREATE pattern[, pattern...].
type CreateStmt struct {
	Patterns []Pattern
}

func (*CreateStmt) stmt() {}

// Render implements Statement.
func (s *CreateStmt) Render() string {
	parts := make([]string, len(s.Patterns))
	for i, p := range s.Patterns {
		parts[i] = p.Render()
	}
	return "CREATE " + strings.Join(parts, ", ")
}

// MatchStmt is MATCH pattern [WHERE cond] RETURN items [ORDER BY item
// [DESC]] [LIMIT n] — the query form used by tooling and the shell, not by
// the generation pipeline.
type MatchStmt struct {
	Pattern Pattern
	// Where is the conjunction of conditions (empty = no filter).
	Where   []Condition
	Returns []ReturnItem
	// OrderBy is the sort key (zero Var = unsorted); OrderDesc flips it.
	OrderBy   ReturnItem
	OrderDesc bool
	// Limit caps the row count; 0 = unlimited.
	Limit int
}

func (*MatchStmt) stmt() {}

// Render implements Statement.
func (s *MatchStmt) Render() string {
	items := make([]string, len(s.Returns))
	for i, r := range s.Returns {
		items[i] = r.Render()
	}
	out := "MATCH " + s.Pattern.Render()
	if len(s.Where) > 0 {
		conds := make([]string, len(s.Where))
		for i, c := range s.Where {
			conds[i] = c.Render()
		}
		out += " WHERE " + strings.Join(conds, " AND ")
	}
	out += " RETURN " + strings.Join(items, ", ")
	if s.OrderBy.Var != "" {
		out += " ORDER BY " + s.OrderBy.Render()
		if s.OrderDesc {
			out += " DESC"
		}
	}
	if s.Limit > 0 {
		out += fmt.Sprintf(" LIMIT %d", s.Limit)
	}
	return out
}

// CompareOp is a WHERE comparison operator.
type CompareOp int

const (
	OpEq CompareOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// Render produces the operator's surface form.
func (o CompareOp) Render() string {
	switch o {
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return "="
	}
}

// Condition is one WHERE comparison: var.prop OP literal.
type Condition struct {
	Var      string
	Property string
	Op       CompareOp
	Value    Literal
}

// Render produces the condition's surface form.
func (c Condition) Render() string {
	return c.Var + "." + c.Property + " " + c.Op.Render() + " " + c.Value.Render()
}

// ReturnItem is one projection in a RETURN clause: a variable, optionally
// with a property access (n.name).
type ReturnItem struct {
	Var      string
	Property string // empty for whole-variable projection
}

// Render produces the canonical text of the item.
func (r ReturnItem) Render() string {
	if r.Property == "" {
		return r.Var
	}
	return r.Var + "." + r.Property
}

// Pattern is a linear node-relationship chain:
// (a)-[:T1]->(b)<-[:T2]-(c) ... . Nodes has len(Rels)+1 entries.
type Pattern struct {
	Nodes []NodePattern
	Rels  []RelPattern
}

// Render produces canonical pattern text.
func (p Pattern) Render() string {
	var b strings.Builder
	for i, n := range p.Nodes {
		if i > 0 {
			r := p.Rels[i-1]
			b.WriteString(r.Render())
		}
		b.WriteString(n.Render())
	}
	return b.String()
}

// NodePattern is (var:Label {props}). All parts optional per Cypher.
type NodePattern struct {
	Var    string
	Labels []string
	Props  []Property
}

// Render produces canonical node-pattern text.
func (n NodePattern) Render() string {
	var b strings.Builder
	b.WriteByte('(')
	b.WriteString(n.Var)
	for _, l := range n.Labels {
		b.WriteByte(':')
		b.WriteString(l)
	}
	if len(n.Props) > 0 {
		b.WriteString(" {")
		for i, p := range n.Props {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(p.Render())
		}
		b.WriteByte('}')
	}
	b.WriteByte(')')
	return b.String()
}

// RelDirection is the arrow orientation of a relationship pattern.
type RelDirection int

const (
	// DirRight is -[:T]-> .
	DirRight RelDirection = iota
	// DirLeft is <-[:T]- .
	DirLeft
	// DirNone is -[:T]- (undirected; executor treats as right).
	DirNone
)

// RelPattern is -[var:TYPE {props}]-> with a direction.
type RelPattern struct {
	Var   string
	Type  string
	Props []Property
	Dir   RelDirection
}

// Render produces canonical relationship-pattern text.
func (r RelPattern) Render() string {
	inner := r.Var
	if r.Type != "" {
		inner += ":" + r.Type
	}
	if len(r.Props) > 0 {
		parts := make([]string, len(r.Props))
		for i, p := range r.Props {
			parts[i] = p.Render()
		}
		inner += " {" + strings.Join(parts, ", ") + "}"
	}
	switch r.Dir {
	case DirLeft:
		return "<-[" + inner + "]-"
	case DirNone:
		return "-[" + inner + "]-"
	default:
		return "-[" + inner + "]->"
	}
}

// LiteralKind distinguishes property literal types.
type LiteralKind int

const (
	LitString LiteralKind = iota
	LitInt
	LitFloat
	LitBool
)

// Literal is a property value literal.
type Literal struct {
	Kind LiteralKind
	Str  string
	Int  int64
	Flt  float64
	Bool bool
}

// Render produces canonical literal text.
func (l Literal) Render() string {
	switch l.Kind {
	case LitString:
		return "'" + strings.ReplaceAll(l.Str, "'", `\'`) + "'"
	case LitInt:
		return fmt.Sprintf("%d", l.Int)
	case LitFloat:
		return fmt.Sprintf("%g", l.Flt)
	case LitBool:
		return fmt.Sprintf("%t", l.Bool)
	default:
		return ""
	}
}

// Property is one key: value pair in a property map.
type Property struct {
	Key   string
	Value Literal
}

// Render produces canonical property text.
func (p Property) Render() string {
	return p.Key + ": " + p.Value.Render()
}

// Render produces the canonical text of the whole script, one statement per
// line.
func (s *Script) Render() string {
	lines := make([]string, len(s.Statements))
	for i, st := range s.Statements {
		lines[i] = st.Render()
	}
	return strings.Join(lines, "\n")
}
