package cypher

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// fuzzSeeds covers the grammar's surface: valid scripts, every statement
// kind, plus the malformed shapes an LLM actually produces (truncation,
// unbalanced delimiters, stray unicode, half-written properties).
var fuzzSeeds = []string{
	"",
	"CREATE (c:Country {name: 'China'})",
	"CREATE (c:Country {name: 'China'})-[:CAPITAL]->(b:City {name: 'Beijing'})",
	"CREATE (a:Person {name: 'Ada', born: 1815})-[:WROTE]->(n:Work {name: 'Notes'})",
	"CREATE (a)-[:KNOWS]->(b), (b)-[:KNOWS]->(c)",
	"MATCH (c:Country) RETURN c.name",
	"MATCH (c:Country {name: 'China'})-[:CAPITAL]->(x) RETURN x",
	"MATCH (c) WHERE c.name = 'China' RETURN c",
	"MERGE (c:Country {name: 'China'})",
	"CREATE (c:Country {name: 'China'})\nCREATE (c)-[:CAPITAL]->(b:City {name: 'Beijing'})",
	// Malformed: the panic-hunting corpus.
	"CREATE (broken",
	"CREATE (a:X {name: )",
	"CREATE (a)-[:]->(b)",
	"CREATE (a)-[:R]->",
	"CREATE (a {name: 'unterminated)",
	"CREATE (a:X {name: 'q' ",
	"CREATE ()",
	"CREATE (a)->(b)",
	"CREATE (a)-[:R]-(b)",
	"MATCH RETURN",
	"MATCH (a WHERE",
	"((((((((((",
	"CREATE " + strings.Repeat("(a)-[:R]->", 50) + "(b)",
	"CREATE (a:\u00e9 {name: '\u4e2d\u56fd'})",
	"\xff\xfe\x00",
	"CREATE (a:X {n: 1.5e})",
	"CREATE (a:X {n: -})",
	"-- comment\nCREATE (a:X {name: 'x'})",
	"create (lower:case {name: 'ok'})",
}

// FuzzParse: arbitrary input must either parse or return an error — the
// parser may never panic, hang, or return (nil, nil).
func FuzzParse(f *testing.F) {
	for _, seed := range fuzzSeeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		script, err := Parse(src)
		if err == nil && script == nil {
			t.Fatalf("Parse(%q) returned nil script with nil error", src)
		}
	})
}

// FuzzLex: the lexer underneath the parser has the same contract.
func FuzzLex(f *testing.F) {
	for _, seed := range fuzzSeeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := Lex(src)
		if err != nil {
			return
		}
		// Successful lexes must not fabricate input: the total token text
		// (string literals are unescaped, so compare loosely) can never
		// exceed the source length plus the escapes it may expand.
		var total int
		for _, tok := range toks {
			total += len(tok.Text)
		}
		if utf8.ValidString(src) && total > 2*len(src)+2 {
			t.Fatalf("Lex(%q) produced %d bytes of token text", src, total)
		}
	})
}

// FuzzDecode: the full pseudo-graph decode path (parse, execute, flatten)
// must error on malformed CREATE scripts, never panic, and never emit a
// triple with an empty field.
func FuzzDecode(f *testing.F) {
	for _, seed := range fuzzSeeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		g, err := Decode(src)
		if err != nil {
			return
		}
		if g == nil {
			t.Fatalf("Decode(%q) returned nil graph with nil error", src)
		}
		for _, tr := range g.Triples {
			if tr.Subject == "" || tr.Relation == "" {
				t.Fatalf("Decode(%q) emitted a degenerate triple %+v", src, tr)
			}
		}
	})
}

// TestFuzzSeedsMalformedError pins the corpus intent outside fuzz mode:
// every malformed seed errors (or yields zero triples) rather than
// producing a bogus graph.
func TestFuzzSeedsMalformedError(t *testing.T) {
	for _, src := range []string{
		"CREATE (broken",
		"CREATE (a:X {name: )",
		"CREATE (a)-[:R]->",
		"CREATE (a {name: 'unterminated)",
		"MATCH (a WHERE",
	} {
		if g, err := Decode(src); err == nil && g.Len() > 0 {
			t.Errorf("Decode(%q) = %d triples, want error", src, g.Len())
		}
	}
}
