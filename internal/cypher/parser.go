package cypher

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseError reports a syntax error with source position.
type ParseError struct {
	Line, Col int
	Msg       string
}

// Error implements error.
func (e *ParseError) Error() string {
	return fmt.Sprintf("cypher: parse error at %d:%d: %s", e.Line, e.Col, e.Msg)
}

// Parse lexes and parses a Cypher script. It accepts the subset the
// generation prompts elicit: CREATE statements (with comma-separated
// pattern lists and multi-hop chains) and MATCH ... RETURN queries.
// Statements may be separated by semicolons or just newlines.
func Parse(src string) (*Script, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.parseScript()
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(format string, args ...any) error {
	t := p.cur()
	return &ParseError{Line: t.Line, Col: t.Col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(kind TokenKind) (Token, error) {
	if p.cur().Kind != kind {
		return Token{}, p.errf("expected %s, found %s %q", kind, p.cur().Kind, p.cur().Text)
	}
	return p.next(), nil
}

// keyword reports whether the current token is the given case-insensitive
// keyword identifier.
func (p *parser) keyword(word string) bool {
	t := p.cur()
	return t.Kind == TokIdent && strings.EqualFold(t.Text, word)
}

func (p *parser) parseScript() (*Script, error) {
	s := &Script{}
	for {
		// Skip statement separators.
		for p.cur().Kind == TokSemicolon {
			p.next()
		}
		if p.cur().Kind == TokEOF {
			break
		}
		switch {
		case p.keyword("CREATE"):
			p.next()
			st, err := p.parseCreate()
			if err != nil {
				return nil, err
			}
			s.Statements = append(s.Statements, st)
		case p.keyword("MATCH"):
			p.next()
			st, err := p.parseMatch()
			if err != nil {
				return nil, err
			}
			s.Statements = append(s.Statements, st)
		case p.keyword("MERGE"):
			// MERGE appears occasionally in LLM output; treat as CREATE,
			// which is semantically close enough for pseudo-graph building
			// (the executor deduplicates nodes by name anyway).
			p.next()
			st, err := p.parseCreate()
			if err != nil {
				return nil, err
			}
			s.Statements = append(s.Statements, st)
		default:
			return nil, p.errf("expected CREATE, MERGE or MATCH, found %q", p.cur().Text)
		}
	}
	if len(s.Statements) == 0 {
		return nil, &ParseError{Line: 1, Col: 1, Msg: "empty script"}
	}
	return s, nil
}

func (p *parser) parseCreate() (*CreateStmt, error) {
	st := &CreateStmt{}
	for {
		pat, err := p.parsePattern()
		if err != nil {
			return nil, err
		}
		st.Patterns = append(st.Patterns, pat)
		if p.cur().Kind != TokComma {
			break
		}
		p.next()
	}
	return st, nil
}

func (p *parser) parseMatch() (*MatchStmt, error) {
	pat, err := p.parsePattern()
	if err != nil {
		return nil, err
	}
	st := &MatchStmt{Pattern: pat}
	if p.keyword("WHERE") {
		p.next()
		for {
			cond, err := p.parseCondition()
			if err != nil {
				return nil, err
			}
			st.Where = append(st.Where, cond)
			if !p.keyword("AND") {
				break
			}
			p.next()
		}
	}
	if !p.keyword("RETURN") {
		return nil, p.errf("expected RETURN after MATCH pattern, found %q", p.cur().Text)
	}
	p.next()
	for {
		if p.cur().Kind == TokStar {
			p.next()
			st.Returns = append(st.Returns, ReturnItem{Var: "*"})
		} else {
			v, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			item := ReturnItem{Var: v.Text}
			if p.cur().Kind == TokDot {
				p.next()
				prop, err := p.expect(TokIdent)
				if err != nil {
					return nil, err
				}
				item.Property = prop.Text
			}
			st.Returns = append(st.Returns, item)
		}
		if p.cur().Kind != TokComma {
			break
		}
		p.next()
	}
	if p.keyword("ORDER") {
		p.next()
		if !p.keyword("BY") {
			return nil, p.errf("expected BY after ORDER, found %q", p.cur().Text)
		}
		p.next()
		v, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		st.OrderBy = ReturnItem{Var: v.Text}
		if p.cur().Kind == TokDot {
			p.next()
			prop, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			st.OrderBy.Property = prop.Text
		}
		if p.keyword("DESC") {
			p.next()
			st.OrderDesc = true
		} else if p.keyword("ASC") {
			p.next()
		}
	}
	if p.keyword("LIMIT") {
		p.next()
		num, err := p.expect(TokNumber)
		if err != nil {
			return nil, err
		}
		limit, err := strconv.Atoi(strings.ReplaceAll(num.Text, "_", ""))
		if err != nil || limit < 0 {
			return nil, p.errf("bad LIMIT %q", num.Text)
		}
		st.Limit = limit
	}
	return st, nil
}

// parseCondition parses var.prop OP literal.
func (p *parser) parseCondition() (Condition, error) {
	var c Condition
	v, err := p.expect(TokIdent)
	if err != nil {
		return c, err
	}
	c.Var = v.Text
	if _, err := p.expect(TokDot); err != nil {
		return c, err
	}
	prop, err := p.expect(TokIdent)
	if err != nil {
		return c, err
	}
	c.Property = prop.Text
	switch p.cur().Kind {
	case TokEquals:
		c.Op = OpEq
	case TokNe:
		c.Op = OpNe
	case TokLt:
		c.Op = OpLt
	case TokLe:
		c.Op = OpLe
	case TokGt:
		c.Op = OpGt
	case TokGe:
		c.Op = OpGe
	default:
		return c, p.errf("expected comparison operator, found %q", p.cur().Text)
	}
	p.next()
	lit, err := p.parseLiteral()
	if err != nil {
		return c, err
	}
	c.Value = lit
	return c, nil
}

// parsePattern parses (node)(rel(node))* chains.
func (p *parser) parsePattern() (Pattern, error) {
	var pat Pattern
	n, err := p.parseNode()
	if err != nil {
		return pat, err
	}
	pat.Nodes = append(pat.Nodes, n)
	for p.cur().Kind == TokDash || p.cur().Kind == TokArrowHead {
		r, err := p.parseRel()
		if err != nil {
			return pat, err
		}
		n, err := p.parseNode()
		if err != nil {
			return pat, err
		}
		pat.Rels = append(pat.Rels, r)
		pat.Nodes = append(pat.Nodes, n)
	}
	return pat, nil
}

// parseNode parses (var:Label:Label2 {k: v, ...}) — every part optional.
func (p *parser) parseNode() (NodePattern, error) {
	var n NodePattern
	if _, err := p.expect(TokLParen); err != nil {
		return n, err
	}
	if p.cur().Kind == TokIdent {
		n.Var = p.next().Text
	}
	for p.cur().Kind == TokColon {
		p.next()
		lbl, err := p.expect(TokIdent)
		if err != nil {
			return n, err
		}
		n.Labels = append(n.Labels, lbl.Text)
	}
	if p.cur().Kind == TokLBrace {
		props, err := p.parseProps()
		if err != nil {
			return n, err
		}
		n.Props = props
	}
	if _, err := p.expect(TokRParen); err != nil {
		return n, err
	}
	return n, nil
}

// parseRel parses -[var:TYPE {props}]-> in all three directions.
func (p *parser) parseRel() (RelPattern, error) {
	var r RelPattern
	switch p.cur().Kind {
	case TokArrowHead: // <-[...]-
		p.next()
		r.Dir = DirLeft
	case TokDash:
		p.next()
	default:
		return r, p.errf("expected relationship, found %q", p.cur().Text)
	}
	if p.cur().Kind == TokLBracket {
		p.next()
		if p.cur().Kind == TokIdent {
			r.Var = p.next().Text
		}
		if p.cur().Kind == TokColon {
			p.next()
			t, err := p.expect(TokIdent)
			if err != nil {
				return r, err
			}
			r.Type = t.Text
		}
		if p.cur().Kind == TokLBrace {
			props, err := p.parseProps()
			if err != nil {
				return r, err
			}
			r.Props = props
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return r, err
		}
	}
	// Closing side of the relationship.
	switch {
	case r.Dir == DirLeft:
		if _, err := p.expect(TokDash); err != nil {
			return r, err
		}
	case p.cur().Kind == TokArrowTail:
		p.next()
		r.Dir = DirRight
	case p.cur().Kind == TokDash:
		p.next()
		r.Dir = DirNone
	default:
		return r, p.errf("expected '->' or '-' to close relationship, found %q", p.cur().Text)
	}
	return r, nil
}

// parseProps parses {key: literal, ...}. Keys may be identifiers or quoted
// strings (LLMs emit both).
func (p *parser) parseProps() ([]Property, error) {
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	var props []Property
	for {
		if p.cur().Kind == TokRBrace {
			p.next()
			return props, nil
		}
		var key string
		switch p.cur().Kind {
		case TokIdent, TokString:
			key = p.next().Text
		default:
			return nil, p.errf("expected property key, found %q", p.cur().Text)
		}
		if _, err := p.expect(TokColon); err != nil {
			return nil, err
		}
		lit, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		props = append(props, Property{Key: key, Value: lit})
		if p.cur().Kind == TokComma {
			p.next()
			continue
		}
		if p.cur().Kind != TokRBrace {
			return nil, p.errf("expected ',' or '}' in property map, found %q", p.cur().Text)
		}
	}
}

func (p *parser) parseLiteral() (Literal, error) {
	t := p.cur()
	switch t.Kind {
	case TokString:
		p.next()
		return Literal{Kind: LitString, Str: t.Text}, nil
	case TokNumber:
		p.next()
		text := strings.ReplaceAll(t.Text, "_", "")
		if strings.Contains(text, ".") {
			f, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return Literal{}, p.errf("bad float literal %q", t.Text)
			}
			return Literal{Kind: LitFloat, Flt: f}, nil
		}
		i, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return Literal{}, p.errf("bad int literal %q", t.Text)
		}
		return Literal{Kind: LitInt, Int: i}, nil
	case TokIdent:
		switch strings.ToLower(t.Text) {
		case "true":
			p.next()
			return Literal{Kind: LitBool, Bool: true}, nil
		case "false":
			p.next()
			return Literal{Kind: LitBool, Bool: false}, nil
		case "null":
			p.next()
			return Literal{Kind: LitString, Str: ""}, nil
		}
		// Bare-word value (unquoted string) — technically invalid Cypher,
		// but frequent in LLM output; accept a single identifier.
		p.next()
		return Literal{Kind: LitString, Str: t.Text}, nil
	default:
		return Literal{}, p.errf("expected literal, found %s", t.Kind)
	}
}
