package cypher

import (
	"repro/internal/kg"
)

// Decode parses and executes a Cypher script and flattens the resulting
// property graph into a pseudo-graph of triples (Gp in the paper). It is
// the complete "step 2 → decode" path of Pseudo-Graph Generation: any
// lexical, syntactic or execution error is returned so callers can measure
// structural validity (the 98 % figure in §III-A).
func Decode(src string) (*kg.Graph, error) {
	script, err := Parse(src)
	if err != nil {
		return nil, err
	}
	ex := NewExecutor()
	if err := ex.Run(script); err != nil {
		return nil, err
	}
	g := &kg.Graph{}
	for _, st := range ex.Graph().DecodeTriples() {
		g.Add(kg.Triple{Subject: st.Subject, Relation: st.Relation, Object: st.Object})
	}
	return g, nil
}

// Validate reports whether the script is structurally valid: it parses,
// executes, and yields at least one triple. This is the predicate the
// Fig. 2 experiment (Cypher route ≈ 98 % vs direct generation ≈ 75 %)
// evaluates over pseudo-graph generations.
func Validate(src string) bool {
	g, err := Decode(src)
	return err == nil && g.Len() > 0
}
