package prompts

import (
	"bytes"
	"strings"
	"testing"
)

// TestParsePromptErrors holds the parser to its clean-error contract on
// the corpus of doctored files the prompt-lint CI job guards against.
func TestParsePromptErrors(t *testing.T) {
	valid := string(mustEmbedded(t, "defaults/io.v1.prompt"))
	cases := []struct {
		name string
		data string
		want string // substring of the error
	}{
		{"empty", "", "frontmatter fence"},
		{"no-fence", "name: io\n", "frontmatter fence"},
		{"torn", "---\nname: io\nversion: 1\n", "unterminated"},
		{"duplicate-key", strings.Replace(valid, "version: 1\n", "version: 1\nversion: 2\n", 1), "duplicate"},
		{"unknown-key", strings.Replace(valid, "version: 1\n", "version: 1\nmodel: gpt\n", 1), "unknown frontmatter key"},
		{"list-outside", "---\n  - stray\n---\nbody", "outside a list"},
		{"scalar-list", strings.Replace(valid, "markers:\n", "markers: inline\n", 1), "must be a list"},
		{"bad-version", strings.Replace(valid, "version: 1\n", "version: one\n", 1), "not an integer"},
		{"bad-task", strings.Replace(valid, "task: io\n", "task: what\n", 1), "unknown task"},
		{"bad-name", strings.Replace(valid, "name: io\n", "name: IO!\n", 1), "bad or missing name"},
		{"missing-marker", strings.Replace(valid, "[answer]:", "(answer)", -1), "marker"},
		{"undeclared-var", strings.Replace(valid, "{{question}}", "{{question}} {{extra}}", 1), "does not declare"},
		{"unused-var", strings.Replace(valid, "vars:\n", "vars:\n  - spare\n", 1), "never used"},
		{"unclosed-placeholder", strings.Replace(valid, "{{question}}", "{{question", 1), "unclosed"},
		{"task-mismatch", strings.Replace(valid, "task: io\n", "task: cot\n", 1), "requires marker"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParsePrompt([]byte(c.data))
			if err == nil {
				t.Fatalf("ParsePrompt accepted a %s file", c.name)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

// TestFormatRoundTrip: every embedded default reparses from its own
// Format output to an equal prompt, and Format is a fixed point.
func TestFormatRoundTrip(t *testing.T) {
	for _, in := range Default().List() {
		p := mustGet(t, in.Name, in.Version)
		out := p.Format()
		p2, err := ParsePrompt(out)
		if err != nil {
			t.Fatalf("%s@%d: reparse of Format output: %v", in.Name, in.Version, err)
		}
		if !promptsEqual(p, p2) {
			t.Fatalf("%s@%d: Format/Parse round trip changed the prompt", in.Name, in.Version)
		}
		if !bytes.Equal(out, p2.Format()) {
			t.Fatalf("%s@%d: Format is not a fixed point", in.Name, in.Version)
		}
	}
}

func mustEmbedded(t *testing.T, path string) []byte {
	t.Helper()
	data, err := defaultsFS.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func mustGet(t *testing.T, name string, version int) *Prompt {
	t.Helper()
	r := NewRegistry()
	r.mu.RLock()
	defer r.mu.RUnlock()
	p := r.versions[name][version]
	if p == nil {
		t.Fatalf("no prompt %s@%d", name, version)
	}
	return p
}

func promptsEqual(a, b *Prompt) bool {
	if a.Name != b.Name || a.Version != b.Version || a.Description != b.Description ||
		a.Task != b.Task || a.Candidate != b.Candidate ||
		a.Temperature != b.Temperature || a.HasTemperature != b.HasTemperature ||
		a.Body != b.Body || len(a.Markers) != len(b.Markers) || len(a.Vars) != len(b.Vars) {
		return false
	}
	for i := range a.Markers {
		if a.Markers[i] != b.Markers[i] {
			return false
		}
	}
	for i := range a.Vars {
		if a.Vars[i] != b.Vars[i] {
			return false
		}
	}
	return true
}

// FuzzParsePrompt holds the parser's core contract under arbitrary input:
// it either returns a clean error or a Prompt whose Format output
// reparses to an equal Prompt with a fixed-point Format — never a panic,
// never a partial result.
func FuzzParsePrompt(f *testing.F) {
	// Seed with every embedded default plus the doctored shapes the
	// error-table test enumerates.
	for _, name := range []string{
		"defaults/pseudo-graph.v1.prompt", "defaults/direct-triples.v1.prompt",
		"defaults/verify.v1.prompt", "defaults/answer-graph.v1.prompt",
		"defaults/answer-graph.v2.prompt", "defaults/io.v1.prompt",
		"defaults/cot.v1.prompt", "defaults/score-relations.v1.prompt",
	} {
		data, err := defaultsFS.ReadFile(name)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte("---\nname: io\nversion: 1\n"))                      // torn frontmatter
	f.Add([]byte("---\nname: io\nname: io\nversion: 1\n---\nbody"))   // duplicate key
	f.Add([]byte("---\nname: x\nversion: 1\ntask: io\n---\nno task")) // missing markers
	f.Add([]byte("---\n  - stray\n---\n"))                            // list item outside a list
	f.Add([]byte("---\nmarkers: inline\n---\n"))                      // scalar where a list must be

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ParsePrompt(data)
		if err != nil {
			if p != nil {
				t.Fatal("ParsePrompt returned both a prompt and an error")
			}
			return
		}
		out := p.Format()
		p2, err := ParsePrompt(out)
		if err != nil {
			t.Fatalf("Format output failed to reparse: %v\n%s", err, out)
		}
		if !promptsEqual(p, p2) {
			t.Fatalf("round trip changed the prompt:\n%+v\n%+v", p, p2)
		}
		if !bytes.Equal(out, p2.Format()) {
			t.Fatal("Format is not a fixed point after one round trip")
		}
	})
}
