package prompts

import (
	"strings"
	"testing"
)

func TestClassify(t *testing.T) {
	tests := []struct {
		prompt string
		want   TaskKind
	}{
		{PseudoGraph("q?"), TaskPseudoGraph},
		{DirectTriples("q?"), TaskDirectTriples},
		{Verify("q?", "<a> <b> <c>", "<a> <b> <d>"), TaskVerify},
		{AnswerFromGraph("q?", "<a> <b> <c>"), TaskGraphQA},
		{CoT("q?"), TaskCoT},
		{IO("q?"), TaskIO},
		{ScoreRelations("q?", []string{"r1", "r2"}), TaskScoreRels},
	}
	for _, tt := range tests {
		if got := Classify(tt.prompt); got != tt.want {
			t.Errorf("Classify(...) = %v, want %v", got, tt.want)
		}
	}
}

func TestTaskKindString(t *testing.T) {
	kinds := []TaskKind{TaskIO, TaskCoT, TaskPseudoGraph, TaskDirectTriples, TaskVerify, TaskGraphQA, TaskScoreRels}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || s == "unknown" || seen[s] {
			t.Errorf("TaskKind %d stringifies to %q", k, s)
		}
		seen[s] = true
	}
}

func TestExtractTaskQuestion(t *testing.T) {
	q := "Who covers more countries, the Andes or the Himalayas?"
	got, err := ExtractTaskQuestion(PseudoGraph(q))
	if err != nil {
		t.Fatal(err)
	}
	if got != q {
		t.Errorf("ExtractTaskQuestion = %q, want %q", got, q)
	}
	// The in-context examples also contain {Question}: markers — the LAST
	// one must win.
	if !strings.Contains(PseudoGraph(q), "Great Lakes") {
		t.Fatal("prompt should contain in-context examples")
	}
	if _, err := ExtractTaskQuestion("no marker"); err == nil {
		t.Error("missing marker accepted")
	}
}

func TestExtractProblem(t *testing.T) {
	q := "What is the population of China?"
	for _, prompt := range []string{IO(q), CoT(q), AnswerFromGraph(q, "<a> <b> <c>")} {
		got, err := ExtractProblem(prompt)
		if err != nil {
			t.Fatal(err)
		}
		if got != q {
			t.Errorf("ExtractProblem = %q, want %q", got, q)
		}
	}
}

func TestExtractVerifyParts(t *testing.T) {
	gold := "[entity_0]:\n<China> <population> <1443497378>"
	toFix := "<China> <Number of population> <1463725000>"
	prompt := Verify("What is the population of China?", gold, toFix)
	parts, err := ExtractVerifyParts(prompt)
	if err != nil {
		t.Fatal(err)
	}
	if parts.Problem != "What is the population of China?" {
		t.Errorf("problem = %q", parts.Problem)
	}
	if parts.GoldGraph != gold {
		t.Errorf("gold = %q", parts.GoldGraph)
	}
	if parts.ToFix != toFix {
		t.Errorf("toFix = %q", parts.ToFix)
	}
	if _, err := ExtractVerifyParts(IO("q?")); err == nil {
		t.Error("non-verify prompt accepted")
	}
}

func TestExtractGraphQAParts(t *testing.T) {
	graph := "<Lake Superior> <area> <82350>\n<Lake Michigan> <area> <57750>"
	prompt := AnswerFromGraph("largest lake?", graph)
	parts, err := ExtractGraphQAParts(prompt)
	if err != nil {
		t.Fatal(err)
	}
	if parts.Problem != "largest lake?" || parts.Graph != graph {
		t.Errorf("parts = %+v", parts)
	}
	// Empty graph must survive the round trip as empty.
	empty, err := ExtractGraphQAParts(AnswerFromGraph("q?", ""))
	if err != nil {
		t.Fatal(err)
	}
	if empty.Graph != "" {
		t.Errorf("empty graph round-tripped as %q", empty.Graph)
	}
}

func TestExtractScoreRelations(t *testing.T) {
	rels := []string{"people/person/place_of_birth", "people/person/profession"}
	prompt := ScoreRelations("Where was X born?", rels)
	q, got, err := ExtractScoreRelations(prompt)
	if err != nil {
		t.Fatal(err)
	}
	if q != "Where was X born?" {
		t.Errorf("question = %q", q)
	}
	if len(got) != 2 || got[0] != rels[0] || got[1] != rels[1] {
		t.Errorf("relations = %v", got)
	}
}

func TestPromptsContainPaperExamples(t *testing.T) {
	// The prompt texts should preserve the paper's in-context examples.
	pg := PseudoGraph("q?")
	for _, want := range []string{"Lake Superior", "Andes", "Himalayas", "COVERS"} {
		if !strings.Contains(pg, want) {
			t.Errorf("pseudo-graph prompt lacks %q", want)
		}
	}
	v := Verify("q?", "g", "f")
	for _, want := range []string{"Number of population", "Keweenaw Waterway", "Dongting Lake"} {
		if !strings.Contains(v, want) {
			t.Errorf("verify prompt lacks %q", want)
		}
	}
	a := AnswerFromGraph("q?", "g")
	if !strings.Contains(a, "{1443497378}") {
		t.Error("answer prompt lacks the population example")
	}
	io := IO("q?")
	if strings.Count(io, "[Example]:") != 6 {
		t.Error("IO prompt should have six in-context examples")
	}
}

func TestVerifyOrderingOfSections(t *testing.T) {
	prompt := Verify("p?", "GOLDGRAPH", "TOFIXGRAPH")
	gi := strings.LastIndex(prompt, MarkerGold)
	ti := strings.LastIndex(prompt, MarkerToFix)
	fi := strings.LastIndex(prompt, MarkerFixed)
	if !(gi < ti && ti < fi) {
		t.Error("verify prompt sections out of order")
	}
}
