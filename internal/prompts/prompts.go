// Package prompts holds the paper's prompt templates (Figs. 3, 4, 5 plus
// the IO/CoT baselines' formats) and the helpers that assemble and parse
// them. Both the real pipeline (internal/core, internal/baselines) and the
// simulated LLM (internal/llm) work purely through these textual prompts:
// the model sees exactly what a GPT endpoint would see, and callers parse
// exactly what a GPT endpoint would return. Keeping the interface textual
// is what makes the Fig. 2 structural-validity experiment meaningful.
//
// The templates themselves are not Go constants: they live in versioned
// .prompt files (see file.go) under defaults/, loaded by the Registry
// (registry.go). The package-level builders below render the shared
// default registry's active versions; pipeline code that wants hot reload
// and per-request A/B overrides threads an explicit *Registry instead.
package prompts

import (
	"fmt"
	"strings"
)

// Markers used by the simulated model to recognise the task. They occur
// naturally in the paper's prompt texts.
const (
	MarkerCypher   = "with (Cypher)"
	MarkerDirect   = "write the triples directly"
	MarkerVerify   = `"graph to fix"`
	MarkerGraphQA  = "[graph]:"
	MarkerCoT      = "think step by step"
	MarkerProblem  = "[problem]:"
	MarkerQuestion = "{Question}:"
	MarkerGold     = `"gold graph":`
	MarkerToFix    = `"graph to fix":`
	MarkerFixed    = `"Fixed graph":`
	MarkerAnswer   = "[answer]:"
)

// PseudoGraph builds the Fig. 3 prompt: plan knowledge, then emit a Cypher
// knowledge graph for the question.
func PseudoGraph(question string) string { return Default().View().PseudoGraph(question) }

// DirectTriples builds the ablation prompt that asks for bare triples
// instead of Cypher — the "direct generation" route whose structural
// accuracy the paper measures at ~75 % versus ~98 % for the Cypher route.
func DirectTriples(question string) string {
	return Default().View().DirectTriples(question)
}

// Verify builds the Fig. 4 prompt: fix the pseudo-graph against the gold
// graph. goldGraph should already be rendered in [entity_i] blocks with
// higher-confidence subjects first (the paper places them closer to Gp).
func Verify(problem, goldGraph, graphToFix string) string {
	return Default().View().Verify(problem, goldGraph, graphToFix)
}

// AnswerFromGraph builds the Fig. 5 prompt: answer the problem from the
// graph, marking the answer entity with {...}; with an empty graph the
// model may use its own knowledge.
func AnswerFromGraph(problem, graph string) string {
	return Default().View().AnswerFromGraph(problem, graph)
}

// IO builds the standard input-output prompt with six in-context examples.
func IO(question string) string { return Default().View().IO(question) }

// CoT builds the chain-of-thought prompt: six examples with explicit
// reasoning, then "let's think step by step".
func CoT(question string) string { return Default().View().CoT(question) }

// ExtractTaskQuestion pulls the question out of a PseudoGraph or
// DirectTriples prompt: the text after the final "{Question}:" marker.
func ExtractTaskQuestion(prompt string) (string, error) {
	i := strings.LastIndex(prompt, MarkerQuestion)
	if i < 0 {
		return "", fmt.Errorf("prompts: no %q marker", MarkerQuestion)
	}
	rest := prompt[i+len(MarkerQuestion):]
	if j := strings.IndexByte(rest, '\n'); j >= 0 {
		rest = rest[:j]
	}
	q := strings.TrimSpace(rest)
	if q == "" {
		return "", fmt.Errorf("prompts: empty task question")
	}
	return q, nil
}

// ExtractProblem pulls the question out of an IO/CoT/Verify/AnswerFromGraph
// prompt: the quoted text after the final "[problem]:" marker.
func ExtractProblem(prompt string) (string, error) {
	i := strings.LastIndex(prompt, MarkerProblem)
	if i < 0 {
		return "", fmt.Errorf("prompts: no %q marker", MarkerProblem)
	}
	rest := prompt[i+len(MarkerProblem):]
	if j := strings.IndexByte(rest, '\n'); j >= 0 {
		rest = rest[:j]
	}
	q := strings.TrimSpace(rest)
	q = strings.Trim(q, `"`)
	if q == "" {
		return "", fmt.Errorf("prompts: empty problem")
	}
	return q, nil
}

// VerifyParts is the decomposition of a Fig. 4 prompt.
type VerifyParts struct {
	Problem   string
	GoldGraph string
	ToFix     string
}

// ExtractVerifyParts splits a Verify prompt into its task sections. Only
// the final [Task] occurrence of each marker is used, so the in-context
// examples do not interfere.
func ExtractVerifyParts(prompt string) (VerifyParts, error) {
	var p VerifyParts
	problem, err := ExtractProblem(prompt)
	if err != nil {
		return p, err
	}
	p.Problem = problem
	gi := strings.LastIndex(prompt, MarkerGold)
	ti := strings.LastIndex(prompt, MarkerToFix)
	fi := strings.LastIndex(prompt, MarkerFixed)
	if gi < 0 || ti < 0 || fi < 0 || !(gi < ti && ti < fi) {
		return p, fmt.Errorf("prompts: malformed verify prompt (gold=%d tofix=%d fixed=%d)", gi, ti, fi)
	}
	p.GoldGraph = strings.TrimSpace(prompt[gi+len(MarkerGold) : ti])
	p.ToFix = strings.TrimSpace(prompt[ti+len(MarkerToFix) : fi])
	return p, nil
}

// GraphQAParts is the decomposition of a Fig. 5 prompt.
type GraphQAParts struct {
	Problem string
	Graph   string
}

// ExtractGraphQAParts splits an AnswerFromGraph prompt.
func ExtractGraphQAParts(prompt string) (GraphQAParts, error) {
	var p GraphQAParts
	problem, err := ExtractProblem(prompt)
	if err != nil {
		return p, err
	}
	p.Problem = problem
	gi := strings.LastIndex(prompt, MarkerGraphQA)
	ai := strings.LastIndex(prompt, MarkerAnswer)
	if gi < 0 {
		return p, fmt.Errorf("prompts: no %q marker", MarkerGraphQA)
	}
	end := len(prompt)
	if ai > gi {
		end = ai
	}
	p.Graph = strings.TrimSpace(prompt[gi+len(MarkerGraphQA) : end])
	return p, nil
}

// MarkerScoreRels marks the relation-scoring prompt ToG-style exploration
// uses to prune candidate relations.
const MarkerScoreRels = "[candidate relations]:"

// ScoreRelations builds the ToG relation-pruning prompt: rate each
// candidate relation's relevance to the question, one score per line.
func ScoreRelations(question string, relations []string) string {
	return Default().View().ScoreRelations(question, relations)
}

// ExtractScoreRelations pulls the candidate relation list out of a
// ScoreRelations prompt.
func ExtractScoreRelations(prompt string) (question string, relations []string, err error) {
	question, err = ExtractProblem(prompt)
	if err != nil {
		return "", nil, err
	}
	i := strings.LastIndex(prompt, MarkerScoreRels)
	if i < 0 {
		return "", nil, fmt.Errorf("prompts: no %q marker", MarkerScoreRels)
	}
	for _, line := range strings.Split(prompt[i+len(MarkerScoreRels):], "\n") {
		line = strings.TrimSpace(line)
		if line != "" {
			relations = append(relations, line)
		}
	}
	if len(relations) == 0 {
		return "", nil, fmt.Errorf("prompts: no candidate relations")
	}
	return question, relations, nil
}

// TaskKind classifies a prompt by its markers, in the priority order the
// simulated model dispatches on.
type TaskKind int

const (
	TaskIO TaskKind = iota
	TaskCoT
	TaskPseudoGraph
	TaskDirectTriples
	TaskVerify
	TaskGraphQA
	TaskScoreRels
)

// String names the task kind.
func (k TaskKind) String() string {
	switch k {
	case TaskIO:
		return "io"
	case TaskCoT:
		return "cot"
	case TaskPseudoGraph:
		return "pseudo-graph"
	case TaskDirectTriples:
		return "direct-triples"
	case TaskVerify:
		return "verify"
	case TaskGraphQA:
		return "graph-qa"
	case TaskScoreRels:
		return "score-relations"
	default:
		return "unknown"
	}
}

// Classify returns the task kind of a prompt.
func Classify(prompt string) TaskKind {
	switch {
	case strings.Contains(prompt, MarkerScoreRels):
		return TaskScoreRels
	case strings.Contains(prompt, MarkerToFix):
		return TaskVerify
	case strings.Contains(prompt, MarkerCypher):
		return TaskPseudoGraph
	case strings.Contains(prompt, MarkerDirect):
		return TaskDirectTriples
	case strings.Contains(prompt, MarkerGraphQA):
		return TaskGraphQA
	case strings.Contains(prompt, MarkerCoT):
		return TaskCoT
	default:
		return TaskIO
	}
}
