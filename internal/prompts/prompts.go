// Package prompts holds the paper's prompt templates (Figs. 3, 4, 5 plus
// the IO/CoT baselines' formats) and the helpers that assemble and parse
// them. Both the real pipeline (internal/core, internal/baselines) and the
// simulated LLM (internal/llm) work purely through these textual prompts:
// the model sees exactly what a GPT endpoint would see, and callers parse
// exactly what a GPT endpoint would return. Keeping the interface textual
// is what makes the Fig. 2 structural-validity experiment meaningful.
package prompts

import (
	"fmt"
	"strings"
)

// Markers used by the simulated model to recognise the task. They occur
// naturally in the paper's prompt texts.
const (
	MarkerCypher   = "with (Cypher)"
	MarkerDirect   = "write the triples directly"
	MarkerVerify   = `"graph to fix"`
	MarkerGraphQA  = "[graph]:"
	MarkerCoT      = "think step by step"
	MarkerProblem  = "[problem]:"
	MarkerQuestion = "{Question}:"
	MarkerGold     = `"gold graph":`
	MarkerToFix    = `"graph to fix":`
	MarkerFixed    = `"Fixed graph":`
	MarkerAnswer   = "[answer]:"
)

// pseudoGraphExamples reproduces the two in-context examples of Fig. 3
// (abridged as in the paper, which omits part of the generated code).
const pseudoGraphExamples = `[Example 1]:
{Question}: Who has the largest area of the Great Lakes in the United States?
<step 1> {Knowledge Planning}:
To answer the question we need the Great Lakes, their individual areas, and the states they are located in.
<step 2> {Knowledge Graph}:
CREATE (superior:Lake {name: 'Lake Superior', area: 82000})
CREATE (michigan:Lake {name: 'Lake Michigan', area: 58000})
CREATE (huron:Lake {name: 'Lake Huron', area: 23000})
CREATE (ontario:Lake {name: 'Lake Ontario', area: 19000})
CREATE (erie:Lake {name: 'Lake Erie', area: 9600})
[Example 2]:
{Question}: Who covers more countries, the Andes or the Himalayas?
<step 1> {Knowledge Planning}:
I need the Andes and the Himalayas, and the countries they span.
<step 2> {Knowledge Graph}:
CREATE (andes:MountainRange {name: "Andes"})
CREATE (himalayas:MountainRange {name: "Himalayas"})
CREATE (andes)-[:COVERS]->(ecuador:Country {name: "Ecuador"})
CREATE (andes)-[:COVERS]->(peru:Country {name: "Peru"})
CREATE (himalayas)-[:COVERS]->(india:Country {name: "India"})
CREATE (himalayas)-[:COVERS]->(nepal:Country {name: "Nepal"})
`

// PseudoGraph builds the Fig. 3 prompt: plan knowledge, then emit a Cypher
// knowledge graph for the question.
func PseudoGraph(question string) string {
	var b strings.Builder
	b.WriteString("[Task description]:\n")
	b.WriteString("You should answer the {Question} in the following steps:\n")
	b.WriteString("<step 1> Find out what {Knowledge Planning} you need to solve the {Question}\n")
	b.WriteString("<step 2> Strictly fill the {Knowledge Planning} to construct the {Knowledge Graph} as complete as possible " + MarkerCypher + "\n")
	b.WriteString(pseudoGraphExamples)
	b.WriteString("[Task]:\n")
	b.WriteString(MarkerQuestion + " " + question + "\n")
	return b.String()
}

// DirectTriples builds the ablation prompt that asks for bare triples
// instead of Cypher — the "direct generation" route whose structural
// accuracy the paper measures at ~75 % versus ~98 % for the Cypher route.
func DirectTriples(question string) string {
	var b strings.Builder
	b.WriteString("[Task description]:\n")
	b.WriteString("You should answer the {Question} by listing the facts you need. ")
	b.WriteString("Please " + MarkerDirect + " in the form <subject> <relation> <object>, one per line.\n")
	b.WriteString("[Example 1]:\n")
	b.WriteString(MarkerQuestion + " Who has the largest area of the Great Lakes in the United States?\n")
	b.WriteString("<Lake Superior> <area> <82000>\n<Lake Michigan> <area> <58000>\n<Lake Huron> <area> <23000>\n")
	b.WriteString("[Example 2]:\n")
	b.WriteString(MarkerQuestion + " Who covers more countries, the Andes or the Himalayas?\n")
	b.WriteString("<Andes> <covers> <Peru>\n<Andes> <covers> <Chile>\n<Himalayas> <covers> <India>\n<Himalayas> <covers> <Nepal>\n")
	b.WriteString("[Task]:\n")
	b.WriteString(MarkerQuestion + " " + question + "\n")
	return b.String()
}

// verifyExamples reproduces the two Fig. 4 in-context examples (abridged).
const verifyExamples = `[Example]:
[problem]: "Who has the largest area of the Great Lakes in the United States?"
"gold graph":
[entity_0]:
<Lake Superior> <area> <82350>
<Lake Superior> <connects with> <Keweenaw Waterway>
[entity_1]:
<Lake Michigan> <area> <57750>
"graph to fix":
<Lake Superior> <AREA> <82000>
<Lake Michigan> <AREA> <58000>
<Dongting Lake> <AREA> <259430>
"Fixed graph":
<Lake Superior> <area> <82350>
<Lake Michigan> <area> <57750>
[Example]:
[problem]: "What is the population of China?"
"gold graph":
[entity_0]:
<China> <population> <1375198619>
<China> <population> <1443497378>
"graph to fix":
<China> <Number of population> <1463725000>
"Fixed graph":
<China> <population> <1443497378>
`

// Verify builds the Fig. 4 prompt: fix the pseudo-graph against the gold
// graph. goldGraph should already be rendered in [entity_i] blocks with
// higher-confidence subjects first (the paper places them closer to Gp).
func Verify(problem, goldGraph, graphToFix string) string {
	var b strings.Builder
	b.WriteString("[Task description]:\n")
	b.WriteString(`Please based the "gold graph" below deleting redundant content from "graph to fix" and adding missing content to help me solve the [problem].` + "\n")
	b.WriteString(verifyExamples)
	b.WriteString("[Task]:\n")
	b.WriteString(`If "graph to fix" has triples that are not in the "gold graph", just delete them! If they conflict, replace them with the ones in the "gold graph". For time-varying triples the "gold graph" lists values in chronological order, so pick the last one.` + "\n")
	b.WriteString(MarkerProblem + " \"" + problem + "\"\n")
	b.WriteString(MarkerGold + "\n" + goldGraph + "\n")
	b.WriteString(MarkerToFix + "\n" + graphToFix + "\n")
	b.WriteString(MarkerFixed + "\n")
	return b.String()
}

// answerExamples reproduces the Fig. 5 in-context examples.
const answerExamples = `[Example]:
[problem]: "What is the population of China?"
[graph]:
<China> <population> <1442965000>
<China> <population> <1443497378>
[answer]: Based on the [graph] above, the population of China is {1443497378}.
[Example]:
[problem]: "Who has the largest area of the Great Lakes in the United States?"
[graph]:
<Lake Superior> <area> <82350>
<Lake Michigan> <area> <57750>
[answer]: Based on the [graph] above, the largest of the Great Lakes is {Lake Superior} which area is 82,350.
`

// AnswerFromGraph builds the Fig. 5 prompt: answer the problem from the
// graph, marking the answer entity with {...}; with an empty graph the
// model may use its own knowledge.
func AnswerFromGraph(problem, graph string) string {
	var b strings.Builder
	b.WriteString("[Task description]:\n")
	b.WriteString("Please use the [graph] below to answer the [problem]. You need to mark your answer with \"{ }\".\n")
	b.WriteString(answerExamples)
	b.WriteString("[Task]:\n")
	b.WriteString("For time-varying triples the [graph] lists values in chronological order, so pick the last one. If [graph] has no triples, answer with your own knowledge.\n")
	b.WriteString(MarkerProblem + " \"" + problem + "\"\n")
	b.WriteString(MarkerGraphQA + "\n" + graph + "\n")
	b.WriteString(MarkerAnswer + " ")
	return b.String()
}

// ioExamples are the six in-context examples the paper uses for the IO
// baseline.
var ioExamples = []string{
	`[problem]: "What is the capital of France?"` + "\n[answer]: The capital of France is {Paris}.",
	`[problem]: "Who wrote Hamlet?"` + "\n[answer]: Hamlet was written by {William Shakespeare}.",
	`[problem]: "What is the population of China?"` + "\n[answer]: The population of China is {1443497378}.",
	`[problem]: "Which river flows through Cairo?"` + "\n[answer]: The river that flows through Cairo is the {Nile}.",
	`[problem]: "When was the University of Oxford established?"` + "\n[answer]: The University of Oxford was established in {1096}.",
	`[problem]: "Who founded Microsoft?"` + "\n[answer]: Microsoft was founded by {Bill Gates}.",
}

// IO builds the standard input-output prompt with six in-context examples.
func IO(question string) string {
	var b strings.Builder
	b.WriteString("[Task description]:\nAnswer the [problem]. Mark your answer with \"{ }\".\n")
	for _, ex := range ioExamples {
		b.WriteString("[Example]:\n" + ex + "\n")
	}
	b.WriteString("[Task]:\n" + MarkerProblem + " \"" + question + "\"\n" + MarkerAnswer + " ")
	return b.String()
}

// CoT builds the chain-of-thought prompt: six examples with explicit
// reasoning, then "let's think step by step".
func CoT(question string) string {
	var b strings.Builder
	b.WriteString("[Task description]:\nAnswer the [problem]. First reason, then mark your answer with \"{ }\". Let's " + MarkerCoT + ".\n")
	for _, ex := range ioExamples {
		b.WriteString("[Example]:\n" + ex + "\n")
	}
	b.WriteString("[Task]:\n" + MarkerProblem + " \"" + question + "\"\n" + MarkerAnswer + " ")
	return b.String()
}

// ExtractTaskQuestion pulls the question out of a PseudoGraph or
// DirectTriples prompt: the text after the final "{Question}:" marker.
func ExtractTaskQuestion(prompt string) (string, error) {
	i := strings.LastIndex(prompt, MarkerQuestion)
	if i < 0 {
		return "", fmt.Errorf("prompts: no %q marker", MarkerQuestion)
	}
	rest := prompt[i+len(MarkerQuestion):]
	if j := strings.IndexByte(rest, '\n'); j >= 0 {
		rest = rest[:j]
	}
	q := strings.TrimSpace(rest)
	if q == "" {
		return "", fmt.Errorf("prompts: empty task question")
	}
	return q, nil
}

// ExtractProblem pulls the question out of an IO/CoT/Verify/AnswerFromGraph
// prompt: the quoted text after the final "[problem]:" marker.
func ExtractProblem(prompt string) (string, error) {
	i := strings.LastIndex(prompt, MarkerProblem)
	if i < 0 {
		return "", fmt.Errorf("prompts: no %q marker", MarkerProblem)
	}
	rest := prompt[i+len(MarkerProblem):]
	if j := strings.IndexByte(rest, '\n'); j >= 0 {
		rest = rest[:j]
	}
	q := strings.TrimSpace(rest)
	q = strings.Trim(q, `"`)
	if q == "" {
		return "", fmt.Errorf("prompts: empty problem")
	}
	return q, nil
}

// VerifyParts is the decomposition of a Fig. 4 prompt.
type VerifyParts struct {
	Problem   string
	GoldGraph string
	ToFix     string
}

// ExtractVerifyParts splits a Verify prompt into its task sections. Only
// the final [Task] occurrence of each marker is used, so the in-context
// examples do not interfere.
func ExtractVerifyParts(prompt string) (VerifyParts, error) {
	var p VerifyParts
	problem, err := ExtractProblem(prompt)
	if err != nil {
		return p, err
	}
	p.Problem = problem
	gi := strings.LastIndex(prompt, MarkerGold)
	ti := strings.LastIndex(prompt, MarkerToFix)
	fi := strings.LastIndex(prompt, MarkerFixed)
	if gi < 0 || ti < 0 || fi < 0 || !(gi < ti && ti < fi) {
		return p, fmt.Errorf("prompts: malformed verify prompt (gold=%d tofix=%d fixed=%d)", gi, ti, fi)
	}
	p.GoldGraph = strings.TrimSpace(prompt[gi+len(MarkerGold) : ti])
	p.ToFix = strings.TrimSpace(prompt[ti+len(MarkerToFix) : fi])
	return p, nil
}

// GraphQAParts is the decomposition of a Fig. 5 prompt.
type GraphQAParts struct {
	Problem string
	Graph   string
}

// ExtractGraphQAParts splits an AnswerFromGraph prompt.
func ExtractGraphQAParts(prompt string) (GraphQAParts, error) {
	var p GraphQAParts
	problem, err := ExtractProblem(prompt)
	if err != nil {
		return p, err
	}
	p.Problem = problem
	gi := strings.LastIndex(prompt, MarkerGraphQA)
	ai := strings.LastIndex(prompt, MarkerAnswer)
	if gi < 0 {
		return p, fmt.Errorf("prompts: no %q marker", MarkerGraphQA)
	}
	end := len(prompt)
	if ai > gi {
		end = ai
	}
	p.Graph = strings.TrimSpace(prompt[gi+len(MarkerGraphQA) : end])
	return p, nil
}

// MarkerScoreRels marks the relation-scoring prompt ToG-style exploration
// uses to prune candidate relations.
const MarkerScoreRels = "[candidate relations]:"

// ScoreRelations builds the ToG relation-pruning prompt: rate each
// candidate relation's relevance to the question, one score per line.
func ScoreRelations(question string, relations []string) string {
	var b strings.Builder
	b.WriteString("[Task description]:\n")
	b.WriteString("Rate how relevant each candidate relation is for answering the [problem], one 'relation<TAB>score' line per relation, scores in [0,1].\n")
	b.WriteString("[Task]:\n")
	b.WriteString(MarkerProblem + " \"" + question + "\"\n")
	b.WriteString(MarkerScoreRels + "\n")
	for _, r := range relations {
		b.WriteString(r + "\n")
	}
	return b.String()
}

// ExtractScoreRelations pulls the candidate relation list out of a
// ScoreRelations prompt.
func ExtractScoreRelations(prompt string) (question string, relations []string, err error) {
	question, err = ExtractProblem(prompt)
	if err != nil {
		return "", nil, err
	}
	i := strings.LastIndex(prompt, MarkerScoreRels)
	if i < 0 {
		return "", nil, fmt.Errorf("prompts: no %q marker", MarkerScoreRels)
	}
	for _, line := range strings.Split(prompt[i+len(MarkerScoreRels):], "\n") {
		line = strings.TrimSpace(line)
		if line != "" {
			relations = append(relations, line)
		}
	}
	if len(relations) == 0 {
		return "", nil, fmt.Errorf("prompts: no candidate relations")
	}
	return question, relations, nil
}

// TaskKind classifies a prompt by its markers, in the priority order the
// simulated model dispatches on.
type TaskKind int

const (
	TaskIO TaskKind = iota
	TaskCoT
	TaskPseudoGraph
	TaskDirectTriples
	TaskVerify
	TaskGraphQA
	TaskScoreRels
)

// String names the task kind.
func (k TaskKind) String() string {
	switch k {
	case TaskIO:
		return "io"
	case TaskCoT:
		return "cot"
	case TaskPseudoGraph:
		return "pseudo-graph"
	case TaskDirectTriples:
		return "direct-triples"
	case TaskVerify:
		return "verify"
	case TaskGraphQA:
		return "graph-qa"
	case TaskScoreRels:
		return "score-relations"
	default:
		return "unknown"
	}
}

// Classify returns the task kind of a prompt.
func Classify(prompt string) TaskKind {
	switch {
	case strings.Contains(prompt, MarkerScoreRels):
		return TaskScoreRels
	case strings.Contains(prompt, MarkerToFix):
		return TaskVerify
	case strings.Contains(prompt, MarkerCypher):
		return TaskPseudoGraph
	case strings.Contains(prompt, MarkerDirect):
		return TaskDirectTriples
	case strings.Contains(prompt, MarkerGraphQA):
		return TaskGraphQA
	case strings.Contains(prompt, MarkerCoT):
		return TaskCoT
	default:
		return TaskIO
	}
}
