package prompts

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// The .prompt file format, modelled on the dotprompt idiom: a YAML-ish
// frontmatter block between two "---" lines, then the template body
// verbatim. The frontmatter is deliberately a tiny, strict subset — no
// nesting, no flow collections, no implicit typing — so a torn or doctored
// file fails to parse instead of silently loading with the wrong meaning:
//
//	---
//	name: answer-graph
//	version: 1
//	description: Fig. 5 answer-from-graph prompt
//	task: graph-qa
//	temperature: 0.7
//	markers:
//	  - "[problem]:"
//	  - "[graph]:"
//	vars:
//	  - problem
//	  - graph
//	---
//	[Task description]:
//	...body with {{problem}} and {{graph}} placeholders...
//
// The body is everything after the closing "---" line, byte for byte —
// including trailing spaces and the presence or absence of a final
// newline. Rendering substitutes {{var}} placeholders and nothing else,
// so the rendered prompt is exactly the body with values spliced in.

// Prompt is one parsed .prompt file: a named, versioned template plus the
// metadata the registry validates at load time.
type Prompt struct {
	// Name identifies the prompt slot ("pseudo-graph", "io", ...); versions
	// of the same name are alternatives for the same pipeline step.
	Name string
	// Version orders alternatives; the registry activates the highest
	// non-candidate version by default.
	Version int
	// Description is free-form provenance shown by GET /v1/prompts.
	Description string
	// Task is the TaskKind the rendered prompt must classify as — the
	// contract the simulated LLM's marker dispatch depends on.
	Task TaskKind
	// Candidate versions load and are selectable (SetActive or a
	// per-request override) but never become active by default — the A/B
	// safety latch.
	Candidate bool
	// Temperature is an optional model parameter carried for callers.
	Temperature float64
	// HasTemperature reports whether the file set Temperature.
	HasTemperature bool
	// Markers are the substrings the file declares the body must contain.
	// Validation additionally requires the task's canonical marker set.
	Markers []string
	// Vars are the declared {{placeholder}} names, in declaration order.
	Vars []string
	// Body is the template text, verbatim.
	Body string
	// Source records where the loader read this prompt from ("embedded"
	// or a file path). It is loader metadata, not frontmatter: ParsePrompt
	// leaves it empty and Format does not emit it.
	Source string
}

// frontmatterKeys is the full legal key set; anything else is an error so
// a typo ("marker:") cannot silently drop an invariant.
var frontmatterKeys = map[string]bool{
	"name": true, "version": true, "description": true, "task": true,
	"candidate": true, "temperature": true, "markers": true, "vars": true,
}

// ParsePrompt parses one .prompt file. It is strict: missing or duplicate
// keys, unknown keys, an unterminated frontmatter block, and malformed
// values are all errors — ParsePrompt either returns a Prompt that
// round-trips through Format, or a clean error, never a partial result.
func ParsePrompt(data []byte) (*Prompt, error) {
	src := string(data)
	const fence = "---"
	rest, ok := strings.CutPrefix(src, fence+"\n")
	if !ok {
		return nil, fmt.Errorf("prompts: file must start with %q frontmatter fence", fence)
	}
	p := &Prompt{Version: -1}
	seen := map[string]bool{}
	var listKey string // key whose list items we are collecting, if any
	for {
		line, tail, found := strings.Cut(rest, "\n")
		if !found {
			return nil, fmt.Errorf("prompts: unterminated frontmatter (no closing %q)", fence)
		}
		rest = tail
		if line == fence {
			break
		}
		if item, ok := strings.CutPrefix(line, "  - "); ok {
			if listKey == "" {
				return nil, fmt.Errorf("prompts: list item %q outside a list key", line)
			}
			val, err := parseValue(item)
			if err != nil {
				return nil, fmt.Errorf("prompts: %s item: %w", listKey, err)
			}
			switch listKey {
			case "markers":
				p.Markers = append(p.Markers, val)
			case "vars":
				p.Vars = append(p.Vars, val)
			}
			continue
		}
		key, raw, found := strings.Cut(line, ":")
		if !found || key == "" || strings.TrimSpace(key) != key {
			return nil, fmt.Errorf("prompts: malformed frontmatter line %q", line)
		}
		if !frontmatterKeys[key] {
			return nil, fmt.Errorf("prompts: unknown frontmatter key %q", key)
		}
		if seen[key] {
			return nil, fmt.Errorf("prompts: duplicate frontmatter key %q", key)
		}
		seen[key] = true
		listKey = ""
		if key == "markers" || key == "vars" {
			if strings.TrimSpace(raw) != "" {
				return nil, fmt.Errorf("prompts: %s must be a list (use %q items)", key, "  - ")
			}
			listKey = key
			continue
		}
		val, err := parseValue(strings.TrimPrefix(raw, " "))
		if err != nil {
			return nil, fmt.Errorf("prompts: %s: %w", key, err)
		}
		switch key {
		case "name":
			p.Name = val
		case "description":
			p.Description = val
		case "version":
			v, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("prompts: version %q is not an integer", val)
			}
			p.Version = v
		case "task":
			t, err := ParseTaskKind(val)
			if err != nil {
				return nil, err
			}
			p.Task = t
		case "candidate":
			b, err := strconv.ParseBool(val)
			if err != nil {
				return nil, fmt.Errorf("prompts: candidate %q is not a bool", val)
			}
			p.Candidate = b
		case "temperature":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("prompts: temperature %q is not a number", val)
			}
			p.Temperature = f
			p.HasTemperature = true
		}
	}
	p.Body = rest
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// parseValue interprets one scalar: a leading double quote selects Go
// string syntax (the only way to carry values with leading/trailing
// spaces, quotes, or colons safely), anything else is taken verbatim.
func parseValue(s string) (string, error) {
	if strings.HasPrefix(s, `"`) {
		v, err := strconv.Unquote(s)
		if err != nil {
			return "", fmt.Errorf("bad quoted value %s", s)
		}
		return v, nil
	}
	if s != strings.TrimSpace(s) {
		return "", fmt.Errorf("unquoted value %q has surrounding space (quote it)", s)
	}
	return s, nil
}

// formatValue renders a scalar for Format, quoting when verbatim form
// would not survive a reparse.
func formatValue(s string) string {
	if s == "" || s != strings.TrimSpace(s) || strings.HasPrefix(s, `"`) {
		return strconv.Quote(s)
	}
	return s
}

// Format renders the prompt back into .prompt file bytes. Format(Parse(x))
// is semantically lossless: reparsing yields an equal Prompt (the fuzz
// test holds this round-trip invariant).
func (p *Prompt) Format() []byte {
	var b strings.Builder
	b.WriteString("---\n")
	fmt.Fprintf(&b, "name: %s\n", formatValue(p.Name))
	fmt.Fprintf(&b, "version: %d\n", p.Version)
	if p.Description != "" {
		fmt.Fprintf(&b, "description: %s\n", formatValue(p.Description))
	}
	fmt.Fprintf(&b, "task: %s\n", p.Task)
	if p.Candidate {
		b.WriteString("candidate: true\n")
	}
	if p.HasTemperature {
		fmt.Fprintf(&b, "temperature: %s\n", strconv.FormatFloat(p.Temperature, 'g', -1, 64))
	}
	if len(p.Markers) > 0 {
		b.WriteString("markers:\n")
		for _, m := range p.Markers {
			fmt.Fprintf(&b, "  - %s\n", formatValue(m))
		}
	}
	if len(p.Vars) > 0 {
		b.WriteString("vars:\n")
		for _, v := range p.Vars {
			fmt.Fprintf(&b, "  - %s\n", formatValue(v))
		}
	}
	b.WriteString("---\n")
	b.WriteString(p.Body)
	return []byte(b.String())
}

// taskMarkers is the canonical marker invariant per task: the substrings
// the simulated LLM's Classify dispatch and extractors require. Every
// version of a prompt must keep its task's markers, or a hot-reloaded
// file would silently break the model's task recognition.
var taskMarkers = map[TaskKind][]string{
	TaskPseudoGraph:   {MarkerCypher, MarkerQuestion},
	TaskDirectTriples: {MarkerDirect, MarkerQuestion},
	TaskVerify:        {MarkerProblem, MarkerGold, MarkerToFix, MarkerFixed},
	TaskGraphQA:       {MarkerProblem, MarkerGraphQA, MarkerAnswer},
	TaskCoT:           {MarkerCoT, MarkerProblem, MarkerAnswer},
	TaskIO:            {MarkerProblem, MarkerAnswer},
	TaskScoreRels:     {MarkerProblem, MarkerScoreRels},
}

// Validate checks the prompt's internal contract: well-formed metadata,
// declared vars exactly matching the body's placeholders, every declared
// and canonical marker present, the body classifying as the declared
// task, and the extractor round trip succeeding on a probe render.
func (p *Prompt) Validate() error {
	if !validName(p.Name) {
		return fmt.Errorf("prompts: bad or missing name %q (want lowercase-kebab)", p.Name)
	}
	if p.Version < 1 {
		return fmt.Errorf("prompts: %s: version must be >= 1 (got %d)", p.Name, p.Version)
	}
	placeholders, err := scanPlaceholders(p.Body)
	if err != nil {
		return fmt.Errorf("prompts: %s@%d: %w", p.Name, p.Version, err)
	}
	declared := map[string]bool{}
	for _, v := range p.Vars {
		if !validVar(v) {
			return fmt.Errorf("prompts: %s@%d: bad var name %q", p.Name, p.Version, v)
		}
		if declared[v] {
			return fmt.Errorf("prompts: %s@%d: duplicate var %q", p.Name, p.Version, v)
		}
		declared[v] = true
		if !placeholders[v] {
			return fmt.Errorf("prompts: %s@%d: declared var %q never used in body", p.Name, p.Version, v)
		}
	}
	for ph := range placeholders {
		if !declared[ph] {
			return fmt.Errorf("prompts: %s@%d: body uses {{%s}} but vars does not declare it", p.Name, p.Version, ph)
		}
	}
	for _, m := range p.Markers {
		if m == "" {
			return fmt.Errorf("prompts: %s@%d: empty marker", p.Name, p.Version)
		}
		if !strings.Contains(p.Body, m) {
			return fmt.Errorf("prompts: %s@%d: declared marker %q missing from body", p.Name, p.Version, m)
		}
	}
	need, ok := taskMarkers[p.Task]
	if !ok {
		return fmt.Errorf("prompts: %s@%d: unknown task %d", p.Name, p.Version, p.Task)
	}
	for _, m := range need {
		if !strings.Contains(p.Body, m) {
			return fmt.Errorf("prompts: %s@%d: task %s requires marker %q in the body", p.Name, p.Version, p.Task, m)
		}
		if !containsString(p.Markers, m) {
			return fmt.Errorf("prompts: %s@%d: task %s requires %q in the markers list", p.Name, p.Version, p.Task, m)
		}
	}
	if got := Classify(p.Body); got != p.Task {
		return fmt.Errorf("prompts: %s@%d: body classifies as %s, frontmatter declares %s", p.Name, p.Version, got, p.Task)
	}
	return p.probeExtractors()
}

// probeExtractors renders the prompt with sentinel values and asserts the
// package extractors recover them — the load-time proof that a prompt
// edit cannot strand the simulated LLM's prompt parsing.
func (p *Prompt) probeExtractors() error {
	const probe = "__prompt_probe_question__?"
	fill := func(graph string) map[string]string {
		vals := map[string]string{}
		for _, v := range p.Vars {
			switch v {
			case "question", "problem":
				vals[v] = probe
			case "relations":
				vals[v] = "rel/alpha\nrel/beta"
			default: // graph-shaped slots
				vals[v] = graph
			}
		}
		return vals
	}
	rendered, err := p.Render(fill("<a> <b> <c>"))
	if err != nil {
		return fmt.Errorf("prompts: %s@%d: probe render: %w", p.Name, p.Version, err)
	}
	fail := func(what string, err error) error {
		return fmt.Errorf("prompts: %s@%d: %s extraction failed on probe render: %w", p.Name, p.Version, what, err)
	}
	switch p.Task {
	case TaskPseudoGraph, TaskDirectTriples:
		q, err := ExtractTaskQuestion(rendered)
		if err != nil {
			return fail("question", err)
		}
		if q != probe {
			return fmt.Errorf("prompts: %s@%d: question extracted as %q, want the probe", p.Name, p.Version, q)
		}
	case TaskVerify:
		parts, err := ExtractVerifyParts(rendered)
		if err != nil {
			return fail("verify-parts", err)
		}
		if parts.Problem != probe || parts.GoldGraph != "<a> <b> <c>" || parts.ToFix != "<a> <b> <c>" {
			return fmt.Errorf("prompts: %s@%d: verify parts did not round-trip (%+v)", p.Name, p.Version, parts)
		}
	case TaskGraphQA:
		parts, err := ExtractGraphQAParts(rendered)
		if err != nil {
			return fail("graph-qa parts", err)
		}
		if parts.Problem != probe || parts.Graph != "<a> <b> <c>" {
			return fmt.Errorf("prompts: %s@%d: graph-qa parts did not round-trip (%+v)", p.Name, p.Version, parts)
		}
		// An empty graph must survive too: graph-backed answering falls
		// back to parametric knowledge on exactly this case.
		empty, err := p.Render(fill(""))
		if err != nil {
			return fail("empty-graph render", err)
		}
		ep, err := ExtractGraphQAParts(empty)
		if err != nil {
			return fail("empty-graph parts", err)
		}
		if ep.Graph != "" {
			return fmt.Errorf("prompts: %s@%d: empty graph round-tripped as %q", p.Name, p.Version, ep.Graph)
		}
	case TaskIO, TaskCoT:
		q, err := ExtractProblem(rendered)
		if err != nil {
			return fail("problem", err)
		}
		if q != probe {
			return fmt.Errorf("prompts: %s@%d: problem extracted as %q, want the probe", p.Name, p.Version, q)
		}
	case TaskScoreRels:
		q, rels, err := ExtractScoreRelations(rendered)
		if err != nil {
			return fail("score-relations", err)
		}
		if q != probe || len(rels) != 2 || rels[0] != "rel/alpha" || rels[1] != "rel/beta" {
			return fmt.Errorf("prompts: %s@%d: score-relations did not round-trip (q=%q rels=%v)", p.Name, p.Version, q, rels)
		}
	}
	return nil
}

// Render substitutes {{var}} placeholders with the given values. Every
// placeholder must have a value; nothing else in the body is touched, and
// substituted values are never re-scanned (a question containing "{{" is
// data, not a template).
func (p *Prompt) Render(vals map[string]string) (string, error) {
	var b strings.Builder
	body := p.Body
	for {
		i := strings.Index(body, "{{")
		if i < 0 {
			b.WriteString(body)
			return b.String(), nil
		}
		j := strings.Index(body[i:], "}}")
		if j < 0 {
			return "", fmt.Errorf("unclosed {{ placeholder")
		}
		name := body[i+2 : i+j]
		val, ok := vals[name]
		if !ok {
			return "", fmt.Errorf("no value for {{%s}}", name)
		}
		b.WriteString(body[:i])
		b.WriteString(val)
		body = body[i+j+2:]
	}
}

// scanPlaceholders collects the {{var}} names used in a body.
func scanPlaceholders(body string) (map[string]bool, error) {
	out := map[string]bool{}
	for {
		i := strings.Index(body, "{{")
		if i < 0 {
			return out, nil
		}
		j := strings.Index(body[i:], "}}")
		if j < 0 {
			return nil, fmt.Errorf("unclosed {{ placeholder")
		}
		name := body[i+2 : i+j]
		if !validVar(name) {
			return nil, fmt.Errorf("bad placeholder {{%s}}", name)
		}
		out[name] = true
		body = body[i+j+2:]
	}
}

func validName(s string) bool {
	if s == "" || s[0] < 'a' || s[0] > 'z' {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '-' {
			return false
		}
	}
	return true
}

func validVar(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < 'a' || c > 'z') && c != '_' {
			return false
		}
	}
	return true
}

func containsString(list []string, want string) bool {
	for _, s := range list {
		if s == want {
			return true
		}
	}
	return false
}

// ParseTaskKind maps a task name back to its TaskKind.
func ParseTaskKind(s string) (TaskKind, error) {
	for _, k := range []TaskKind{TaskIO, TaskCoT, TaskPseudoGraph, TaskDirectTriples, TaskVerify, TaskGraphQA, TaskScoreRels} {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("prompts: unknown task %q", s)
}

// sortedNames returns map keys in sorted order (stable listings).
func sortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
