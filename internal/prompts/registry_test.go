package prompts

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// legacy* reconstruct the pre-registry Go-constant builders verbatim.
// The embedded v1 .prompt files must render byte-identically, or every
// simulated-LLM token count (and so every replay baseline) would shift.

const legacyPseudoGraphExamples = `[Example 1]:
{Question}: Who has the largest area of the Great Lakes in the United States?
<step 1> {Knowledge Planning}:
To answer the question we need the Great Lakes, their individual areas, and the states they are located in.
<step 2> {Knowledge Graph}:
CREATE (superior:Lake {name: 'Lake Superior', area: 82000})
CREATE (michigan:Lake {name: 'Lake Michigan', area: 58000})
CREATE (huron:Lake {name: 'Lake Huron', area: 23000})
CREATE (ontario:Lake {name: 'Lake Ontario', area: 19000})
CREATE (erie:Lake {name: 'Lake Erie', area: 9600})
[Example 2]:
{Question}: Who covers more countries, the Andes or the Himalayas?
<step 1> {Knowledge Planning}:
I need the Andes and the Himalayas, and the countries they span.
<step 2> {Knowledge Graph}:
CREATE (andes:MountainRange {name: "Andes"})
CREATE (himalayas:MountainRange {name: "Himalayas"})
CREATE (andes)-[:COVERS]->(ecuador:Country {name: "Ecuador"})
CREATE (andes)-[:COVERS]->(peru:Country {name: "Peru"})
CREATE (himalayas)-[:COVERS]->(india:Country {name: "India"})
CREATE (himalayas)-[:COVERS]->(nepal:Country {name: "Nepal"})
`

func legacyPseudoGraph(question string) string {
	var b strings.Builder
	b.WriteString("[Task description]:\n")
	b.WriteString("You should answer the {Question} in the following steps:\n")
	b.WriteString("<step 1> Find out what {Knowledge Planning} you need to solve the {Question}\n")
	b.WriteString("<step 2> Strictly fill the {Knowledge Planning} to construct the {Knowledge Graph} as complete as possible " + MarkerCypher + "\n")
	b.WriteString(legacyPseudoGraphExamples)
	b.WriteString("[Task]:\n")
	b.WriteString(MarkerQuestion + " " + question + "\n")
	return b.String()
}

func legacyDirectTriples(question string) string {
	var b strings.Builder
	b.WriteString("[Task description]:\n")
	b.WriteString("You should answer the {Question} by listing the facts you need. ")
	b.WriteString("Please " + MarkerDirect + " in the form <subject> <relation> <object>, one per line.\n")
	b.WriteString("[Example 1]:\n")
	b.WriteString(MarkerQuestion + " Who has the largest area of the Great Lakes in the United States?\n")
	b.WriteString("<Lake Superior> <area> <82000>\n<Lake Michigan> <area> <58000>\n<Lake Huron> <area> <23000>\n")
	b.WriteString("[Example 2]:\n")
	b.WriteString(MarkerQuestion + " Who covers more countries, the Andes or the Himalayas?\n")
	b.WriteString("<Andes> <covers> <Peru>\n<Andes> <covers> <Chile>\n<Himalayas> <covers> <India>\n<Himalayas> <covers> <Nepal>\n")
	b.WriteString("[Task]:\n")
	b.WriteString(MarkerQuestion + " " + question + "\n")
	return b.String()
}

const legacyVerifyExamples = `[Example]:
[problem]: "Who has the largest area of the Great Lakes in the United States?"
"gold graph":
[entity_0]:
<Lake Superior> <area> <82350>
<Lake Superior> <connects with> <Keweenaw Waterway>
[entity_1]:
<Lake Michigan> <area> <57750>
"graph to fix":
<Lake Superior> <AREA> <82000>
<Lake Michigan> <AREA> <58000>
<Dongting Lake> <AREA> <259430>
"Fixed graph":
<Lake Superior> <area> <82350>
<Lake Michigan> <area> <57750>
[Example]:
[problem]: "What is the population of China?"
"gold graph":
[entity_0]:
<China> <population> <1375198619>
<China> <population> <1443497378>
"graph to fix":
<China> <Number of population> <1463725000>
"Fixed graph":
<China> <population> <1443497378>
`

func legacyVerify(problem, goldGraph, graphToFix string) string {
	var b strings.Builder
	b.WriteString("[Task description]:\n")
	b.WriteString(`Please based the "gold graph" below deleting redundant content from "graph to fix" and adding missing content to help me solve the [problem].` + "\n")
	b.WriteString(legacyVerifyExamples)
	b.WriteString("[Task]:\n")
	b.WriteString(`If "graph to fix" has triples that are not in the "gold graph", just delete them! If they conflict, replace them with the ones in the "gold graph". For time-varying triples the "gold graph" lists values in chronological order, so pick the last one.` + "\n")
	b.WriteString(MarkerProblem + " \"" + problem + "\"\n")
	b.WriteString(MarkerGold + "\n" + goldGraph + "\n")
	b.WriteString(MarkerToFix + "\n" + graphToFix + "\n")
	b.WriteString(MarkerFixed + "\n")
	return b.String()
}

const legacyAnswerExamples = `[Example]:
[problem]: "What is the population of China?"
[graph]:
<China> <population> <1442965000>
<China> <population> <1443497378>
[answer]: Based on the [graph] above, the population of China is {1443497378}.
[Example]:
[problem]: "Who has the largest area of the Great Lakes in the United States?"
[graph]:
<Lake Superior> <area> <82350>
<Lake Michigan> <area> <57750>
[answer]: Based on the [graph] above, the largest of the Great Lakes is {Lake Superior} which area is 82,350.
`

func legacyAnswerFromGraph(problem, graph string) string {
	var b strings.Builder
	b.WriteString("[Task description]:\n")
	b.WriteString("Please use the [graph] below to answer the [problem]. You need to mark your answer with \"{ }\".\n")
	b.WriteString(legacyAnswerExamples)
	b.WriteString("[Task]:\n")
	b.WriteString("For time-varying triples the [graph] lists values in chronological order, so pick the last one. If [graph] has no triples, answer with your own knowledge.\n")
	b.WriteString(MarkerProblem + " \"" + problem + "\"\n")
	b.WriteString(MarkerGraphQA + "\n" + graph + "\n")
	b.WriteString(MarkerAnswer + " ")
	return b.String()
}

var legacyIOExamples = []string{
	`[problem]: "What is the capital of France?"` + "\n[answer]: The capital of France is {Paris}.",
	`[problem]: "Who wrote Hamlet?"` + "\n[answer]: Hamlet was written by {William Shakespeare}.",
	`[problem]: "What is the population of China?"` + "\n[answer]: The population of China is {1443497378}.",
	`[problem]: "Which river flows through Cairo?"` + "\n[answer]: The river that flows through Cairo is the {Nile}.",
	`[problem]: "When was the University of Oxford established?"` + "\n[answer]: The University of Oxford was established in {1096}.",
	`[problem]: "Who founded Microsoft?"` + "\n[answer]: Microsoft was founded by {Bill Gates}.",
}

func legacyIO(question string) string {
	var b strings.Builder
	b.WriteString("[Task description]:\nAnswer the [problem]. Mark your answer with \"{ }\".\n")
	for _, ex := range legacyIOExamples {
		b.WriteString("[Example]:\n" + ex + "\n")
	}
	b.WriteString("[Task]:\n" + MarkerProblem + " \"" + question + "\"\n" + MarkerAnswer + " ")
	return b.String()
}

func legacyCoT(question string) string {
	var b strings.Builder
	b.WriteString("[Task description]:\nAnswer the [problem]. First reason, then mark your answer with \"{ }\". Let's " + MarkerCoT + ".\n")
	for _, ex := range legacyIOExamples {
		b.WriteString("[Example]:\n" + ex + "\n")
	}
	b.WriteString("[Task]:\n" + MarkerProblem + " \"" + question + "\"\n" + MarkerAnswer + " ")
	return b.String()
}

func legacyScoreRelations(question string, relations []string) string {
	var b strings.Builder
	b.WriteString("[Task description]:\n")
	b.WriteString("Rate how relevant each candidate relation is for answering the [problem], one 'relation<TAB>score' line per relation, scores in [0,1].\n")
	b.WriteString("[Task]:\n")
	b.WriteString(MarkerProblem + " \"" + question + "\"\n")
	b.WriteString(MarkerScoreRels + "\n")
	for _, r := range relations {
		b.WriteString(r + "\n")
	}
	return b.String()
}

// TestEmbeddedV1MatchesLegacyBuilders is the refactor's byte-compat gate:
// the embedded v1 prompt files must render exactly what the old Go
// builders produced, for all seven pipeline slots.
func TestEmbeddedV1MatchesLegacyBuilders(t *testing.T) {
	const q = "What is the population of Porto?"
	const graph = "<Porto> <population> <214349>"
	const gold = "[entity_0]:\n<Porto> <population> <214349>"
	cases := []struct {
		slot      string
		got, want string
	}{
		{"pseudo-graph", PseudoGraph(q), legacyPseudoGraph(q)},
		{"direct-triples", DirectTriples(q), legacyDirectTriples(q)},
		{"verify", Verify(q, gold, graph), legacyVerify(q, gold, graph)},
		{"answer-graph", AnswerFromGraph(q, graph), legacyAnswerFromGraph(q, graph)},
		{"answer-graph-empty", AnswerFromGraph(q, ""), legacyAnswerFromGraph(q, "")},
		{"io", IO(q), legacyIO(q)},
		{"cot", CoT(q), legacyCoT(q)},
		{"score-relations", ScoreRelations(q, []string{"population", "capital of"}), legacyScoreRelations(q, []string{"population", "capital of"})},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s render drifted from the legacy builder:\n got: %q\nwant: %q", c.slot, c.got, c.want)
		}
	}
}

func TestCandidateVersionNotActiveByDefault(t *testing.T) {
	r := NewRegistry()
	v := r.View()
	if got := v.Version("answer-graph"); got != 1 {
		t.Fatalf("answer-graph active version = %d, want 1 (v2 is a candidate)", got)
	}
	if err := r.SetActive("answer-graph", 2); err != nil {
		t.Fatalf("SetActive: %v", err)
	}
	if got := r.View().Version("answer-graph"); got != 2 {
		t.Fatalf("after SetActive, active version = %d, want 2", got)
	}
	// The candidate body renders and still classifies/extracts correctly.
	p := r.View().AnswerFromGraph("q?", "<a> <b> <c>")
	if Classify(p) != TaskGraphQA {
		t.Fatalf("candidate render classifies as %s", Classify(p))
	}
	if p == legacyAnswerFromGraph("q?", "<a> <b> <c>") {
		t.Fatal("candidate v2 renders identically to v1 — not a usable A/B arm")
	}
}

func TestSetActiveRejectsUnknown(t *testing.T) {
	r := NewRegistry()
	if err := r.SetActive("no-such-prompt", 1); err == nil {
		t.Fatal("SetActive accepted an unknown name")
	}
	if err := r.SetActive("io", 99); err == nil {
		t.Fatal("SetActive accepted an unknown version")
	}
}

func TestResolveOverrides(t *testing.T) {
	r := NewRegistry()
	v, err := r.Resolve(map[string]string{"answer-graph": "2"})
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if v.Version("answer-graph") != 2 || v.Version("io") != 1 {
		t.Fatalf("Resolve versions = %v", v.Versions())
	}
	if _, err := r.Resolve(map[string]string{"answer-graph": "9"}); err == nil {
		t.Fatal("Resolve accepted a missing version")
	}
	if _, err := r.Resolve(map[string]string{"nope": "1"}); err == nil {
		t.Fatal("Resolve accepted an unknown name")
	}
	if _, err := r.Resolve(map[string]string{"io": "one"}); err == nil {
		t.Fatal("Resolve accepted a non-numeric version")
	}
}

func TestForAppliesContextOverridesAndPinnedView(t *testing.T) {
	r := NewRegistry()
	ctx := WithVersions(context.Background(), map[string]string{"answer-graph": "2"})
	if got := r.For(ctx).Version("answer-graph"); got != 2 {
		t.Fatalf("For with override: version %d, want 2", got)
	}
	// Invalid overrides are ignored best-effort.
	ctx = WithVersions(context.Background(), map[string]string{"answer-graph": "bogus"})
	if got := r.For(ctx).Version("answer-graph"); got != 1 {
		t.Fatalf("For with bogus override: version %d, want 1", got)
	}
	// A pinned view wins over everything.
	pinned, err := r.Resolve(map[string]string{"answer-graph": "2"})
	if err != nil {
		t.Fatal(err)
	}
	ctx = WithView(context.Background(), pinned)
	if got := r.For(ctx).Version("answer-graph"); got != 2 {
		t.Fatalf("For with pinned view: version %d, want 2", got)
	}
	// Nil registry falls back to the shared default.
	var nilReg *Registry
	if got := nilReg.For(context.Background()).Version("io"); got != 1 {
		t.Fatalf("nil registry For: io version %d, want 1", got)
	}
}

func TestFingerprintTracksActiveSet(t *testing.T) {
	r := NewRegistry()
	fp1 := r.Fingerprint()
	if !strings.Contains(fp1, "answer-graph@1") {
		t.Fatalf("fingerprint %q missing answer-graph@1", fp1)
	}
	if err := r.SetActive("answer-graph", 2); err != nil {
		t.Fatal(err)
	}
	fp2 := r.Fingerprint()
	if fp1 == fp2 {
		t.Fatal("fingerprint did not change when the active set changed")
	}
	if !strings.Contains(fp2, "answer-graph@2") {
		t.Fatalf("fingerprint %q missing answer-graph@2", fp2)
	}
}

func TestLoadDirOverlayAndReload(t *testing.T) {
	dir := t.TempDir()
	v3 := []byte(`---
name: io
version: 3
description: overlay test version
task: io
markers:
  - "[problem]:"
  - "[answer]:"
vars:
  - question
---
[Task description]:
Answer the [problem] in one word. Mark your answer with "{ }".
[Task]:
[problem]: "{{question}}"
[answer]: `)
	path := filepath.Join(dir, "io.v3.prompt")
	if err := os.WriteFile(path, v3, 0o644); err != nil {
		t.Fatal(err)
	}
	r := NewRegistry()
	if err := r.LoadDir(dir); err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if got := r.View().Version("io"); got != 3 {
		t.Fatalf("after overlay, io active version = %d, want 3", got)
	}
	if !strings.Contains(r.View().IO("q?"), "in one word") {
		t.Fatal("overlay body not served")
	}

	// A broken overlay file must reject the reload atomically: the
	// registry keeps serving the pre-reload set.
	if err := os.WriteFile(path, []byte("---\nname: io\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := r.Reload(); err == nil {
		t.Fatal("Reload accepted a torn prompt file")
	}
	if got := r.View().Version("io"); got != 3 {
		t.Fatalf("failed reload changed the active set: io@%d", got)
	}

	// Removing the overlay file and reloading falls back to embedded v1.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if err := r.Reload(); err != nil {
		t.Fatalf("Reload after remove: %v", err)
	}
	if got := r.View().Version("io"); got != 1 {
		t.Fatalf("after removing overlay, io active version = %d, want 1", got)
	}
}

func TestLoadDirRejectsMissingRequiredSlot(t *testing.T) {
	dir := t.TempDir()
	// An overlay that redefines a required slot with the wrong vars must
	// fail the registry-level contract.
	bad := []byte(`---
name: io
version: 9
task: io
markers:
  - "[problem]:"
  - "[answer]:"
vars:
  - query
---
[problem]: "{{query}}"
[answer]: `)
	if err := os.WriteFile(filepath.Join(dir, "bad.prompt"), bad, 0o644); err != nil {
		t.Fatal(err)
	}
	r := NewRegistry()
	if err := r.LoadDir(dir); err == nil {
		t.Fatal("LoadDir accepted a required slot with the wrong var set")
	}
	if got := r.View().Version("io"); got != 1 {
		t.Fatalf("failed LoadDir changed the active set: io@%d", got)
	}
}

func TestListMarksActiveAndSorts(t *testing.T) {
	r := NewRegistry()
	infos := r.List()
	if len(infos) < 8 {
		t.Fatalf("List returned %d entries, want >= 8", len(infos))
	}
	var sawV1, sawV2 bool
	for i := 1; i < len(infos); i++ {
		a, b := infos[i-1], infos[i]
		if a.Name > b.Name || (a.Name == b.Name && a.Version >= b.Version) {
			t.Fatalf("List not sorted: %v before %v", a, b)
		}
	}
	for _, in := range infos {
		if in.Name == "answer-graph" && in.Version == 1 {
			sawV1 = true
			if !in.Active || in.Candidate {
				t.Fatalf("answer-graph@1 flags wrong: %+v", in)
			}
		}
		if in.Name == "answer-graph" && in.Version == 2 {
			sawV2 = true
			if in.Active || !in.Candidate {
				t.Fatalf("answer-graph@2 flags wrong: %+v", in)
			}
		}
		if in.Source != "embedded" {
			t.Fatalf("embedded prompt has source %q", in.Source)
		}
	}
	if !sawV1 || !sawV2 {
		t.Fatalf("List missing answer-graph versions (v1=%v v2=%v)", sawV1, sawV2)
	}
}

func TestApplyVersions(t *testing.T) {
	r := NewRegistry()
	if err := r.ApplyVersions(map[string]string{"answer-graph": "2", "io": "1"}); err != nil {
		t.Fatalf("ApplyVersions: %v", err)
	}
	if got := r.View().Version("answer-graph"); got != 2 {
		t.Fatalf("answer-graph = %d, want 2", got)
	}
	if err := r.ApplyVersions(map[string]string{"io": "nope"}); err == nil {
		t.Fatal("ApplyVersions accepted a non-numeric version")
	}
}

func TestViewVersionsWireForm(t *testing.T) {
	vs := NewRegistry().View().Versions()
	want := []string{"pseudo-graph", "direct-triples", "verify", "answer-graph", "io", "cot", "score-relations"}
	for _, name := range want {
		if vs[name] != "1" {
			t.Fatalf("Versions()[%q] = %q, want \"1\" (all: %v)", name, vs[name], vs)
		}
	}
}
