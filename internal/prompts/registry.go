package prompts

import (
	"context"
	"embed"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
)

// The versioned prompt registry. Every prompt the system sends is a
// .prompt file: the embedded defaults under defaults/ reproduce the
// paper's templates, and a -prompt-dir overlay can add or override
// versions at runtime. The registry is hot-reloadable (Reload re-reads
// the overlay atomically — a bad file rejects the reload and keeps the
// current set) and supports per-request version overrides for A/B tests.
// The active version set has a Fingerprint that joins cache/singleflight
// scope keys exactly like the substrate epoch, so a reload that changes
// any prompt implicitly invalidates every cached answer.

//go:embed defaults/*.prompt
var defaultsFS embed.FS

// requiredPrompts is the pipeline's prompt contract: every registry must
// hold at least one version of each name, declaring exactly these vars,
// for the typed View accessors to be total.
var requiredPrompts = map[string]struct {
	task TaskKind
	vars []string
}{
	"pseudo-graph":    {TaskPseudoGraph, []string{"question"}},
	"direct-triples":  {TaskDirectTriples, []string{"question"}},
	"verify":          {TaskVerify, []string{"problem", "gold_graph", "graph_to_fix"}},
	"answer-graph":    {TaskGraphQA, []string{"problem", "graph"}},
	"io":              {TaskIO, []string{"question"}},
	"cot":             {TaskCoT, []string{"question"}},
	"score-relations": {TaskScoreRels, []string{"question", "relations"}},
}

// Registry holds every loaded prompt version and the active selection.
type Registry struct {
	mu sync.RWMutex
	// versions maps name -> version -> prompt.
	versions map[string]map[int]*Prompt
	// pins are explicit SetActive selections; a pin that no longer
	// resolves after a reload is ignored until it resolves again.
	pins map[string]int
	// dir is the overlay directory Reload re-reads ("" = embedded only).
	dir string
}

// NewRegistry builds a registry over the embedded default prompt set.
// The embedded files are compile-time data validated by tests, so a load
// failure is a build defect and panics, like a bad regexp.MustCompile.
func NewRegistry() *Registry {
	r := &Registry{pins: map[string]int{}}
	versions, err := loadAll("")
	if err != nil {
		panic("prompts: embedded defaults are invalid: " + err.Error())
	}
	r.versions = versions
	return r
}

var defaultRegistry = sync.OnceValue(NewRegistry)

// Default returns the shared registry over the embedded defaults, for
// callers that do not thread an explicit registry.
func Default() *Registry { return defaultRegistry() }

// loadAll builds the name -> version -> prompt map from the embedded
// defaults plus an optional overlay dir. Overlay files may add new
// versions or replace an embedded (name, version) outright.
func loadAll(dir string) (map[string]map[int]*Prompt, error) {
	versions := map[string]map[int]*Prompt{}
	add := func(p *Prompt) error {
		if versions[p.Name] == nil {
			versions[p.Name] = map[int]*Prompt{}
		}
		if prev := versions[p.Name][p.Version]; prev != nil && prev.Source == p.Source {
			return fmt.Errorf("prompts: %s@%d defined twice (%s)", p.Name, p.Version, p.Source)
		}
		versions[p.Name][p.Version] = p
		return nil
	}
	entries, err := fs.Glob(defaultsFS, "defaults/*.prompt")
	if err != nil {
		return nil, fmt.Errorf("prompts: %w", err)
	}
	for _, name := range entries {
		data, err := defaultsFS.ReadFile(name)
		if err != nil {
			return nil, fmt.Errorf("prompts: %w", err)
		}
		p, err := ParsePrompt(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		p.Source = "embedded"
		if err := add(p); err != nil {
			return nil, err
		}
	}
	if dir != "" {
		files, err := filepath.Glob(filepath.Join(dir, "*.prompt"))
		if err != nil {
			return nil, fmt.Errorf("prompts: %w", err)
		}
		if _, err := os.Stat(dir); err != nil {
			return nil, fmt.Errorf("prompts: %w", err)
		}
		for _, path := range files {
			data, err := os.ReadFile(path)
			if err != nil {
				return nil, fmt.Errorf("prompts: %w", err)
			}
			p, err := ParsePrompt(data)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", path, err)
			}
			p.Source = path
			if versions[p.Name] == nil {
				versions[p.Name] = map[int]*Prompt{}
			}
			// Overlay replaces an embedded version of the same number.
			versions[p.Name][p.Version] = p
		}
	}
	return versions, validateSet(versions)
}

// validateSet checks the registry-level contract over a loaded map: every
// required prompt name present, with the exact var set its View accessor
// renders with, and the required task kind.
func validateSet(versions map[string]map[int]*Prompt) error {
	for name, req := range requiredPrompts {
		vs := versions[name]
		if len(vs) == 0 {
			return fmt.Errorf("prompts: required prompt %q is missing", name)
		}
		for _, p := range vs {
			if p.Task != req.task {
				return fmt.Errorf("prompts: %s@%d: task is %s, slot %q requires %s", name, p.Version, p.Task, name, req.task)
			}
			if !sameVarSet(p.Vars, req.vars) {
				return fmt.Errorf("prompts: %s@%d: vars %v, slot %q requires exactly %v", name, p.Version, p.Vars, name, req.vars)
			}
		}
	}
	return nil
}

func sameVarSet(got, want []string) bool {
	if len(got) != len(want) {
		return false
	}
	set := make(map[string]bool, len(got))
	for _, v := range got {
		set[v] = true
	}
	for _, v := range want {
		if !set[v] {
			return false
		}
	}
	return true
}

// LoadDir overlays a prompt directory and remembers it for Reload. The
// swap is atomic: any invalid file rejects the whole load and the
// registry keeps serving its current set.
func (r *Registry) LoadDir(dir string) error {
	versions, err := loadAll(dir)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.dir = dir
	r.versions = versions
	return nil
}

// Reload re-reads the overlay directory (a no-op without one). Like
// LoadDir, a failed reload leaves the current set untouched — the hot
// path never observes a half-loaded registry.
func (r *Registry) Reload() error {
	r.mu.RLock()
	dir := r.dir
	r.mu.RUnlock()
	if dir == "" {
		return nil
	}
	versions, err := loadAll(dir)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.versions = versions
	return nil
}

// Dir returns the overlay directory, if any.
func (r *Registry) Dir() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.dir
}

// SetActive pins a prompt name to a specific version — the A/B switch.
// Pinning a candidate version is exactly how one arm of an experiment
// goes live; Reload keeps pins that still resolve.
func (r *Registry) SetActive(name string, version int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.versions[name] == nil {
		return fmt.Errorf("prompts: unknown prompt %q", name)
	}
	if r.versions[name][version] == nil {
		return fmt.Errorf("prompts: %s has no version %d", name, version)
	}
	r.pins[name] = version
	return nil
}

// ApplyVersions pins several names at once from a name -> version-string
// map (the wire form replay suite meta and request overrides use).
func (r *Registry) ApplyVersions(versions map[string]string) error {
	for name, vs := range versions {
		v, err := strconv.Atoi(vs)
		if err != nil {
			return fmt.Errorf("prompts: bad version %q for %s", vs, name)
		}
		if err := r.SetActive(name, v); err != nil {
			return err
		}
	}
	return nil
}

// activeLocked resolves a name's active version under the read lock:
// a resolving pin wins, else the highest non-candidate version, else the
// highest version (a name shipped only as candidates).
func (r *Registry) activeLocked(name string) *Prompt {
	vs := r.versions[name]
	if len(vs) == 0 {
		return nil
	}
	if pin, ok := r.pins[name]; ok {
		if p := vs[pin]; p != nil {
			return p
		}
	}
	var best, bestAny *Prompt
	for _, p := range vs {
		if bestAny == nil || p.Version > bestAny.Version {
			bestAny = p
		}
		if !p.Candidate && (best == nil || p.Version > best.Version) {
			best = p
		}
	}
	if best != nil {
		return best
	}
	return bestAny
}

// View returns an immutable snapshot of the active version set. Renders
// through a View are consistent even if the registry reloads mid-request.
func (r *Registry) View() *View {
	if r == nil {
		return Default().View()
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	v := &View{prompts: make(map[string]*Prompt, len(r.versions))}
	for name := range r.versions {
		if p := r.activeLocked(name); p != nil {
			v.prompts[name] = p
		}
	}
	return v
}

// Resolve returns a View of the active set with the given version
// overrides applied, strictly: an unknown name or version errors, so a
// request asking for a prompt that does not exist fails fast instead of
// silently answering with a different prompt than its cache key claims.
func (r *Registry) Resolve(overrides map[string]string) (*View, error) {
	if r == nil {
		return Default().Resolve(overrides)
	}
	v := r.View()
	if len(overrides) == 0 {
		return v, nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, vs := range overrides {
		ver, err := strconv.Atoi(vs)
		if err != nil {
			return nil, fmt.Errorf("prompts: bad version %q for %s", vs, name)
		}
		p := r.versions[name][ver]
		if p == nil {
			return nil, fmt.Errorf("prompts: no prompt %s@%d", name, ver)
		}
		v.prompts[name] = p
	}
	return v, nil
}

// Fingerprint renders the active version set as a stable string
// ("answer-graph@1,cot@1,..."), the prompt analogue of the substrate
// epoch: it joins cache and singleflight scope keys, so changing any
// active version invalidates every cached answer by construction.
func (r *Registry) Fingerprint() string {
	return r.View().Fingerprint()
}

// For resolves the View a request should render with: a View pinned into
// the context wins (one resolution per request, consistent across
// stages), else the active set with any context version overrides
// applied best-effort (unknown overrides are ignored here — the serving
// path validates them strictly with Resolve before work starts).
func (r *Registry) For(ctx context.Context) *View {
	if v, ok := ctx.Value(viewKey{}).(*View); ok && v != nil {
		return v
	}
	if r == nil {
		return Default().For(ctx)
	}
	v := r.View()
	overrides, _ := ctx.Value(versionsKey{}).(map[string]string)
	if len(overrides) == 0 {
		return v
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, vs := range overrides {
		if ver, err := strconv.Atoi(vs); err == nil {
			if p := r.versions[name][ver]; p != nil {
				v.prompts[name] = p
			}
		}
	}
	return v
}

// Info describes one loaded prompt version for listings (/v1/prompts).
type Info struct {
	Name        string `json:"name"`
	Version     int    `json:"version"`
	Task        string `json:"task"`
	Description string `json:"description,omitempty"`
	Candidate   bool   `json:"candidate,omitempty"`
	Active      bool   `json:"active"`
	Source      string `json:"source"`
}

// List returns every loaded prompt version, sorted by name then version,
// with the active one per name flagged.
func (r *Registry) List() []Info {
	if r == nil {
		return Default().List()
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []Info
	for _, name := range sortedNames(r.versions) {
		active := r.activeLocked(name)
		vs := r.versions[name]
		nums := make([]int, 0, len(vs))
		for n := range vs {
			nums = append(nums, n)
		}
		sortInts(nums)
		for _, n := range nums {
			p := vs[n]
			out = append(out, Info{
				Name: p.Name, Version: p.Version, Task: p.Task.String(),
				Description: p.Description, Candidate: p.Candidate,
				Active: active != nil && active.Version == p.Version,
				Source: p.Source,
			})
		}
	}
	return out
}

// View is an immutable active-prompt snapshot with typed render helpers
// for each pipeline slot.
type View struct {
	prompts map[string]*Prompt
}

// render renders a required slot; registry validation guarantees the slot
// exists with exactly these vars, so failure here is a programmer error.
func (v *View) render(name string, vals map[string]string) string {
	p := v.prompts[name]
	if p == nil {
		panic("prompts: view has no prompt " + name)
	}
	s, err := p.Render(vals)
	if err != nil {
		panic(fmt.Sprintf("prompts: rendering %s@%d: %v", p.Name, p.Version, err))
	}
	return s
}

// PseudoGraph renders the Fig. 3 prompt: plan knowledge, then emit a
// Cypher knowledge graph for the question.
func (v *View) PseudoGraph(question string) string {
	return v.render("pseudo-graph", map[string]string{"question": question})
}

// DirectTriples renders the ablation prompt that asks for bare triples
// instead of Cypher.
func (v *View) DirectTriples(question string) string {
	return v.render("direct-triples", map[string]string{"question": question})
}

// Verify renders the Fig. 4 prompt: fix the pseudo-graph against the gold
// graph.
func (v *View) Verify(problem, goldGraph, graphToFix string) string {
	return v.render("verify", map[string]string{
		"problem": problem, "gold_graph": goldGraph, "graph_to_fix": graphToFix,
	})
}

// AnswerFromGraph renders the Fig. 5 prompt: answer the problem from the
// graph, marking the answer entity with {...}.
func (v *View) AnswerFromGraph(problem, graph string) string {
	return v.render("answer-graph", map[string]string{"problem": problem, "graph": graph})
}

// IO renders the standard input-output prompt.
func (v *View) IO(question string) string {
	return v.render("io", map[string]string{"question": question})
}

// CoT renders the chain-of-thought prompt.
func (v *View) CoT(question string) string {
	return v.render("cot", map[string]string{"question": question})
}

// ScoreRelations renders the ToG relation-pruning prompt.
func (v *View) ScoreRelations(question string, relations []string) string {
	return v.render("score-relations", map[string]string{
		"question": question, "relations": strings.Join(relations, "\n"),
	})
}

// Versions returns the view's name -> version map in wire form — what
// trace records and replay suite metas pin.
func (v *View) Versions() map[string]string {
	out := make(map[string]string, len(v.prompts))
	for name, p := range v.prompts {
		out[name] = strconv.Itoa(p.Version)
	}
	return out
}

// Version returns one slot's active version (0 when absent).
func (v *View) Version(name string) int {
	if p := v.prompts[name]; p != nil {
		return p.Version
	}
	return 0
}

// Fingerprint renders the view's version set as a stable string.
func (v *View) Fingerprint() string {
	var b strings.Builder
	for i, name := range sortedNames(v.prompts) {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(name)
		b.WriteByte('@')
		b.WriteString(strconv.Itoa(v.prompts[name].Version))
	}
	return b.String()
}

type versionsKey struct{}
type viewKey struct{}

// WithVersions attaches per-request prompt version overrides (name ->
// version string) to a context; Registry.For applies them.
func WithVersions(ctx context.Context, versions map[string]string) context.Context {
	if len(versions) == 0 {
		return ctx
	}
	return context.WithValue(ctx, versionsKey{}, versions)
}

// WithView pins an already-resolved View into the context so every stage
// of a request renders from the same snapshot even across a hot reload.
func WithView(ctx context.Context, v *View) context.Context {
	if v == nil {
		return ctx
	}
	return context.WithValue(ctx, viewKey{}, v)
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
