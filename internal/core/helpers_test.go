package core

import (
	"testing"
	"time"

	"repro/internal/core/exec"
	"repro/internal/kg"
)

// graphOf builds a pseudo-graph from (s, r, o) triput rows.
func graphOf(rows ...[3]string) *kg.Graph {
	g := &kg.Graph{}
	for _, row := range rows {
		g.Add(kg.NewTriple(row[0], row[1], row[2]))
	}
	return g
}

func TestChainRelationsEmptyGraph(t *testing.T) {
	if rels := chainRelations(&kg.Graph{}); len(rels) != 0 {
		t.Errorf("empty graph chain relations = %v, want none", rels)
	}
}

func TestChainRelationsFlatStar(t *testing.T) {
	// A star graph: every object is a leaf, no chaining planned.
	g := graphOf(
		[3]string{"Ada", "born in", "London"},
		[3]string{"Ada", "field", "mathematics"},
	)
	if rels := chainRelations(g); len(rels) != 0 {
		t.Errorf("star graph chain relations = %v, want none", rels)
	}
}

func TestChainRelationsDetectsPlannedHops(t *testing.T) {
	// "born in" bridges into London's own facts; case differs to exercise
	// the fold.
	g := graphOf(
		[3]string{"Ada", "born in", "london"},
		[3]string{"London", "country", "England"},
	)
	rels := chainRelations(g)
	if len(rels) != 1 || rels[0] != "born in" {
		t.Errorf("chain relations = %v, want [born in]", rels)
	}
}

func TestChainRelationsDeduplicates(t *testing.T) {
	// The same relation chains through two bridges but must appear once.
	g := graphOf(
		[3]string{"Ada", "born in", "London"},
		[3]string{"Bob", "born in", "Paris"},
		[3]string{"London", "country", "England"},
		[3]string{"Paris", "country", "France"},
	)
	if rels := chainRelations(g); len(rels) != 1 {
		t.Errorf("chain relations = %v, want exactly one entry", rels)
	}
}

func TestRelationInSetEmptySet(t *testing.T) {
	if relationInSet("born in", nil) {
		t.Error("empty set must match nothing")
	}
}

func TestRelationInSetOverlap(t *testing.T) {
	cases := []struct {
		relation string
		set      []string
		want     bool
	}{
		// Identical surface.
		{"born in", []string{"born in"}, true},
		// Token-overlap >= 0.5 of the smaller set ("place of birth" vs
		// "birth place": full overlap of the smaller side).
		{"birth place", []string{"place of birth"}, true},
		// Disjoint vocabularies.
		{"spouse", []string{"employer"}, false},
		// Punctuation and case are normalised by the tokenizer.
		{"Born-In", []string{"born in"}, true},
		// Partial overlap below the 0.5 coefficient.
		{"country of citizenship and residence", []string{"residence"}, true},
	}
	for _, c := range cases {
		if got := relationInSet(c.relation, c.set); got != c.want {
			t.Errorf("relationInSet(%q, %v) = %v, want %v", c.relation, c.set, got, c.want)
		}
	}
}

func TestTokenSet(t *testing.T) {
	got := tokenSet("Born-In: the CITY, again city")
	for _, want := range []string{"born", "in", "city"} {
		if !got[want] {
			t.Errorf("tokenSet missing %q (got %v)", want, got)
		}
	}
	// 5 distinct words with "city" appearing twice: duplicates fold.
	if len(got) != 5 {
		t.Errorf("tokenSet size = %d, want 5 (%v)", len(got), got)
	}
	if len(tokenSet("")) != 0 {
		t.Error("empty surface must tokenize to the empty set")
	}
}

// TestTraceCloneCopiesStageSpans covers the span slice added to Trace:
// a clone must not alias the original's spans, or a serving cache handing
// out clones would let one caller corrupt another's trace.
func TestTraceCloneCopiesStageSpans(t *testing.T) {
	orig := &Trace{
		Question: "q",
		Stages: []exec.Span{
			{Stage: StagePseudo, Latency: time.Millisecond, LLMCalls: 1},
			{Stage: StageAnswer, Latency: 2 * time.Millisecond, LLMCalls: 1},
		},
	}
	clone := orig.Clone()
	if len(clone.Stages) != 2 {
		t.Fatalf("clone has %d spans, want 2", len(clone.Stages))
	}
	clone.Stages[0].Stage = "mutated"
	clone.Stages[1].LLMCalls = 99
	if orig.Stages[0].Stage != StagePseudo || orig.Stages[1].LLMCalls != 1 {
		t.Error("mutating the clone's spans corrupted the original")
	}
	orig.Stages[0].Latency = time.Hour
	if clone.Stages[0].Latency == time.Hour {
		t.Error("mutating the original's spans corrupted the clone")
	}
	var nilTrace *Trace
	if nilTrace.Clone() != nil {
		t.Error("nil trace must clone to nil")
	}
}
