package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/llm"
	"repro/internal/prompts"
)

// flakyPseudoClient returns garbage Cypher at nonce 0 and a good program
// at later nonces, exercising the refinement retry.
type flakyPseudoClient struct {
	fakeClient
	goodFromNonce int
}

func (f *flakyPseudoClient) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	if prompts.Classify(req.Prompt) == prompts.TaskPseudoGraph {
		if req.Nonce < f.goodFromNonce {
			return llm.Response{Text: "no cypher here, sorry"}, nil
		}
		return llm.Response{Text: "```\nCREATE (c:Country {name: 'China'})-[:POPULATION]->(v:Value {name: '1'})\n```"}, nil
	}
	return f.fakeClient.Complete(ctx, req)
}

func TestAnswerRefinedRecoversOnRetry(t *testing.T) {
	client := &flakyPseudoClient{
		fakeClient: fakeClient{
			verify: passthroughVerify,
			answer: func(p prompts.GraphQAParts) string {
				if strings.TrimSpace(p.Graph) == "" {
					return "{nothing}"
				}
				return "grounded {answer}"
			},
		},
		goodFromNonce: 1,
	}
	p := newTestPipeline(t, client)
	res, err := p.AnswerRefined(context.Background(), "What is the population of China?", DefaultRefineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 2 {
		t.Errorf("rounds = %d, want 2", res.Rounds)
	}
	if !res.Grounded {
		t.Error("retry should have grounded")
	}
	if !strings.Contains(res.Answer, "grounded") {
		t.Errorf("answer = %q", res.Answer)
	}
}

func TestAnswerRefinedFirstRoundGroundsImmediately(t *testing.T) {
	client := &fakeClient{
		pseudo: "```\nCREATE (c:Country {name: 'China'})-[:POPULATION]->(v:Value {name: '1'})\n```",
		verify: passthroughVerify,
		answer: func(prompts.GraphQAParts) string { return "{done}" },
	}
	p := newTestPipeline(t, client)
	res, err := p.AnswerRefined(context.Background(), "What is the population of China?", DefaultRefineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 1 || !res.Grounded {
		t.Errorf("rounds=%d grounded=%v, want 1/true", res.Rounds, res.Grounded)
	}
}

func TestAnswerRefinedExhaustsRounds(t *testing.T) {
	client := &flakyPseudoClient{
		fakeClient: fakeClient{
			verify: passthroughVerify,
			answer: func(prompts.GraphQAParts) string { return "{fallback}" },
		},
		goodFromNonce: 99, // never good
	}
	p := newTestPipeline(t, client)
	res, err := p.AnswerRefined(context.Background(), "q?", RefineConfig{MaxRounds: 3, Temperature: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 3 || res.Grounded {
		t.Errorf("rounds=%d grounded=%v, want 3/false", res.Rounds, res.Grounded)
	}
	if !strings.Contains(res.Answer, "fallback") {
		t.Errorf("answer = %q", res.Answer)
	}
}

func TestAnswerRefinedZeroRoundsClamped(t *testing.T) {
	client := &fakeClient{
		pseudo: "garbage",
		verify: passthroughVerify,
		answer: func(prompts.GraphQAParts) string { return "{x}" },
	}
	p := newTestPipeline(t, client)
	res, err := p.AnswerRefined(context.Background(), "q?", RefineConfig{MaxRounds: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 1 {
		t.Errorf("rounds = %d, want clamped 1", res.Rounds)
	}
}

func TestAnswerRefinedMatchesAnswerWhenGrounded(t *testing.T) {
	// With a deterministic client whose first round grounds, AnswerRefined
	// must produce the same answer as the plain pipeline.
	client := &fakeClient{
		pseudo: "```\nCREATE (c:Country {name: 'China'})-[:POPULATION]->(v:Value {name: '1'})\n```",
		verify: passthroughVerify,
		answer: answerEcho,
	}
	p := newTestPipeline(t, client)
	plain, err := p.Answer(context.Background(), "What is the population of China?")
	if err != nil {
		t.Fatal(err)
	}
	refined, err := p.AnswerRefined(context.Background(), "What is the population of China?", DefaultRefineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if plain.Answer != refined.Answer {
		t.Errorf("refined (%q) differs from plain (%q)", refined.Answer, plain.Answer)
	}
}
