package core

import (
	"context"

	"repro/internal/core/exec"
	"repro/internal/kg"
	"repro/internal/llm"
)

// Stage names of the PG&AKV composition, as they appear in trace spans and
// per-stage serving metrics.
const (
	StagePseudo   = "pseudo-graph"
	StageRetrieve = "retrieve-prune"
	StageVerify   = "verify"
	StageAnswer   = "answer"
)

// runState is the shared state of one pipeline composition: each stage
// reads what earlier stages produced and writes its own artefact, mirroring
// the paper's dataflow (question -> Gp -> Gg -> Gf -> answer).
type runState struct {
	// client is the per-run counting client every stage routes LLM calls
	// through, so spans attribute usage stage by stage.
	client llm.Client
	tr     *Trace

	question    string
	nonce       int     // refine round (0 = greedy first round)
	temperature float64 // sampling temperature for retry rounds

	gp, gg, gf *kg.Graph
	answer     string
}

// stagePseudo is step 1: prompt for a Cypher program, execute, decode Gp.
func (p *Pipeline) stagePseudo() exec.Stage[runState] {
	return exec.Stage[runState]{
		Name: StagePseudo,
		Run: func(ctx context.Context, s *runState) error {
			gp, err := p.generatePseudoGraph(ctx, s.client, s.question, s.nonce, s.temperature, s.tr)
			if err != nil {
				return err
			}
			s.gp = gp
			s.tr.Gp = gp
			return nil
		},
		InputSize:  func(s *runState) int { return len(s.question) },
		OutputSize: func(s *runState) int { return s.gp.Len() },
	}
}

// stageRetrievePrune is steps 2-3: semantic query + two-step pruning -> Gg.
// Pure retrieval — no LLM calls.
func (p *Pipeline) stageRetrievePrune() exec.Stage[runState] {
	return exec.Stage[runState]{
		Name: StageRetrieve,
		Run: func(ctx context.Context, s *runState) error {
			s.gg = p.QueryAndPrune(s.gp, s.tr)
			s.tr.Gg = s.gg
			return nil
		},
		InputSize:  func(s *runState) int { return s.gp.Len() },
		OutputSize: func(s *runState) int { return s.gg.Len() },
	}
}

// stageVerify is step 4: the LLM edits Gp against Gg -> Gf.
func (p *Pipeline) stageVerify() exec.Stage[runState] {
	return exec.Stage[runState]{
		Name: StageVerify,
		Run: func(ctx context.Context, s *runState) error {
			gf, err := p.verify(ctx, s.client, s.question, s.gp, s.gg, s.tr)
			if err != nil {
				return err
			}
			s.gf = gf
			s.tr.Gf = gf
			return nil
		},
		InputSize:  func(s *runState) int { return s.gp.Len() + s.gg.Len() },
		OutputSize: func(s *runState) int { return s.gf.Len() },
	}
}

// stageAnswerFinal is step 5: answer from the best graph available — Gf
// when verification ran, else the raw Gp (the ours-gp ablation composes
// stagePseudo directly with this stage).
func (p *Pipeline) stageAnswerFinal() exec.Stage[runState] {
	return exec.Stage[runState]{
		Name: StageAnswer,
		Run: func(ctx context.Context, s *runState) error {
			graph := s.gf
			if graph == nil {
				graph = s.gp
			}
			text, err := p.answerFromGraph(ctx, s.client, s.question, graph, s.tr)
			if err != nil {
				return err
			}
			s.answer = text
			return nil
		},
		InputSize: func(s *runState) int {
			if s.gf != nil {
				return s.gf.Len()
			}
			return s.gp.Len()
		},
		OutputSize: func(s *runState) int { return len(s.answer) },
	}
}

// run executes a composition for one question, attaching the per-stage
// spans to the returned trace. On error the partial trace (spans included,
// the failing stage's span carrying its error class) still comes back with
// the Result so serving layers can observe exactly which stage failed.
func (p *Pipeline) run(ctx context.Context, question string, nonce int, temperature float64, stages ...exec.Stage[runState]) (Result, error) {
	// Reuse the caller's counter when the client already is one (the
	// answer registry wraps every per-query client): one counting layer
	// serves both the per-stage span diffs and the query totals.
	counter, ok := p.client.(*llm.Counting)
	if !ok {
		counter = llm.NewCounting(p.client)
	}
	tr := Trace{Question: question}
	st := runState{client: counter, tr: &tr, question: question, nonce: nonce, temperature: temperature}
	spans, err := exec.Run(ctx, &st, exec.Options{DefaultTimeout: p.cfg.StageTimeout, Usage: counter.Usage}, stages...)
	tr.Stages = spans
	if err != nil {
		return Result{Trace: tr}, err
	}
	return Result{Answer: st.answer, Trace: tr}, nil
}

// Answer runs the full PG&AKV composition for a question. The context
// bounds the whole run; Config.StageTimeout additionally bounds each stage.
func (p *Pipeline) Answer(ctx context.Context, question string) (Result, error) {
	return p.run(ctx, question, 0, p.cfg.Temperature,
		p.stagePseudo(), p.stageRetrievePrune(), p.stageVerify(), p.stageAnswerFinal())
}

// AnswerPseudoOnly runs the Gp-only composition (the paper's "w/ Gp"
// ablation, registry method "ours-gp"): pseudo-graph generation straight
// into answer generation, skipping retrieval and verification.
func (p *Pipeline) AnswerPseudoOnly(ctx context.Context, question string) (Result, error) {
	return p.run(ctx, question, 0, p.cfg.Temperature,
		p.stagePseudo(), p.stageAnswerFinal())
}
