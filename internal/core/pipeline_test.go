package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/embed"
	"repro/internal/kg"
	"repro/internal/llm"
	"repro/internal/prompts"
	"repro/internal/vecstore"
)

// fakeClient scripts LLM behaviour per task kind, decoupling pipeline tests
// from the simulated model.
type fakeClient struct {
	pseudo  string // returned for pseudo-graph prompts
	verify  func(p prompts.VerifyParts) string
	answer  func(p prompts.GraphQAParts) string
	failAll bool
	calls   int
}

func (f *fakeClient) Name() string { return "fake" }

func (f *fakeClient) Complete(_ context.Context, req llm.Request) (llm.Response, error) {
	f.calls++
	if f.failAll {
		return llm.Response{}, errors.New("boom")
	}
	switch prompts.Classify(req.Prompt) {
	case prompts.TaskPseudoGraph:
		return llm.Response{Text: f.pseudo}, nil
	case prompts.TaskVerify:
		parts, err := prompts.ExtractVerifyParts(req.Prompt)
		if err != nil {
			return llm.Response{}, err
		}
		return llm.Response{Text: f.verify(parts)}, nil
	case prompts.TaskGraphQA:
		parts, err := prompts.ExtractGraphQAParts(req.Prompt)
		if err != nil {
			return llm.Response{}, err
		}
		return llm.Response{Text: f.answer(parts)}, nil
	default:
		return llm.Response{Text: "unexpected task"}, nil
	}
}

// testStore builds a small Wikidata-flavoured store with a time-varying
// fact and a chain.
func testStore(t *testing.T) (*kg.Store, *vecstore.Index) {
	t.Helper()
	st := kg.NewStore(kg.SourceWikidata)
	st.AddAll([]kg.Triple{
		{Subject: "China", Relation: "population", Object: "1375198619", Ord: 0},
		{Subject: "China", Relation: "population", Object: "1443497378", Ord: 1},
		{Subject: "China", Relation: "capital", Object: "Beijing"},
		{Subject: "Beijing", Relation: "country", Object: "China"},
		{Subject: "Beijing", Relation: "population", Object: "21893095", Ord: 0},
		{Subject: "Lake Superior", Relation: "area", Object: "82350"},
		{Subject: "Lake Michigan", Relation: "area", Object: "57750"},
	})
	st.Freeze()
	return st, vecstore.Build(embed.NewEncoder(), st)
}

func passthroughVerify(p prompts.VerifyParts) string {
	// Echo the gold graph (a maximally-trusting verifier).
	g, err := kg.ParseGraph(p.GoldGraph)
	if err != nil {
		return p.ToFix
	}
	return g.String()
}

func answerEcho(p prompts.GraphQAParts) string {
	return "graph had " + fmt.Sprint(strings.Count(p.Graph, "<")/3) + " triples {X}"
}

func newTestPipeline(t *testing.T, client llm.Client) *Pipeline {
	t.Helper()
	st, idx := testStore(t)
	p, err := New(client, st, idx, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	st, idx := testStore(t)
	if _, err := New(nil, st, idx, DefaultConfig()); err == nil {
		t.Error("nil client accepted")
	}
	if _, err := New(&fakeClient{}, nil, idx, DefaultConfig()); err == nil {
		t.Error("nil store accepted")
	}
	// Zero config gets defaults.
	p, err := New(&fakeClient{}, st, idx, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Config().TopK != 10 || p.Config().MaxSubjectTriples != 12 {
		t.Errorf("defaults not applied: %+v", p.Config())
	}
}

func TestExtractCypher(t *testing.T) {
	fenced := "plan text\n```\nCREATE (a:X {name:'a'})\n```\ntrailer"
	if got := ExtractCypher(fenced); got != "CREATE (a:X {name:'a'})" {
		t.Errorf("fenced extraction = %q", got)
	}
	bare := "some text\nCREATE (a:X {name:'a'})\nmore text\nMERGE (b:Y {name:'b'})"
	got := ExtractCypher(bare)
	if !strings.Contains(got, "CREATE") || !strings.Contains(got, "MERGE") {
		t.Errorf("bare extraction = %q", got)
	}
	if ExtractCypher("no code at all") != "" {
		t.Error("extraction from prose should be empty")
	}
}

func TestGeneratePseudoGraphDecodes(t *testing.T) {
	client := &fakeClient{
		pseudo: "```\nCREATE (c:Country {name: 'China'})-[:POPULATION]->(v:Value {name: '1400000000'})\n```",
	}
	p := newTestPipeline(t, client)
	var tr Trace
	gp, err := p.GeneratePseudoGraph(context.Background(), "What is the population of China?", &tr)
	if err != nil {
		t.Fatal(err)
	}
	if gp.Len() != 1 || gp.Triples[0].Subject != "China" || gp.Triples[0].Relation != "population" {
		t.Errorf("Gp = %s", gp)
	}
	if tr.PseudoErr != nil || tr.PseudoCode == "" {
		t.Errorf("trace = %+v", tr)
	}
}

func TestGeneratePseudoGraphMalformedIsEmptyNotError(t *testing.T) {
	client := &fakeClient{pseudo: "```\nCREATE (broken\n```"}
	p := newTestPipeline(t, client)
	var tr Trace
	gp, err := p.GeneratePseudoGraph(context.Background(), "q?", &tr)
	if err != nil {
		t.Fatal(err)
	}
	if gp.Len() != 0 {
		t.Errorf("malformed cypher decoded to %s", gp)
	}
	if tr.PseudoErr == nil {
		t.Error("trace should record the decode error")
	}
}

func TestQueryAndPruneFindsSubjectBlock(t *testing.T) {
	p := newTestPipeline(t, &fakeClient{})
	gp := kg.NewGraph(kg.NewTriple("China", "number of population", "1463725000"))
	var tr Trace
	gg := p.QueryAndPrune(gp, &tr)
	if gg.Len() == 0 {
		t.Fatal("Gg empty")
	}
	if !gg.ContainsSR("China", "population") {
		t.Errorf("Gg lacks China population block:\n%s", gg)
	}
	// Time-varying block must be in chronological order.
	var pops []string
	for _, tr := range gg.Triples {
		if tr.Subject == "China" && tr.Relation == "population" {
			pops = append(pops, tr.Object)
		}
	}
	if len(pops) != 2 || pops[0] != "1375198619" || pops[1] != "1443497378" {
		t.Errorf("population block order: %v", pops)
	}
	if len(tr.Kept) == 0 || tr.Kept[0].Subject != "China" {
		t.Errorf("kept = %v", tr.Kept)
	}
}

func TestQueryAndPruneEmptyGp(t *testing.T) {
	p := newTestPipeline(t, &fakeClient{})
	if gg := p.QueryAndPrune(&kg.Graph{}, nil); gg.Len() != 0 {
		t.Error("empty Gp should yield empty Gg")
	}
}

func TestQueryAndPruneThresholdFiltersNoise(t *testing.T) {
	st, idx := testStore(t)
	cfg := DefaultConfig()
	cfg.ConfidenceThreshold = 0.99 // only the best subject survives
	p, err := New(&fakeClient{}, st, idx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gp := kg.NewGraph(kg.NewTriple("China", "population", "1400000000"))
	var tr Trace
	p.QueryAndPrune(gp, &tr)
	if len(tr.Kept) != 1 || tr.Kept[0].Subject != "China" {
		t.Errorf("kept at 0.99 threshold = %v", tr.Kept)
	}
}

func TestChainGatedExpansion(t *testing.T) {
	p := newTestPipeline(t, &fakeClient{})
	// Chain pseudo-graph: Beijing's country is China (object China is also
	// a pseudo subject via second triple) -> expansion should pull China's
	// block when anchored at Beijing.
	gp := kg.NewGraph(
		kg.NewTriple("Beijing", "country", "China"),
		kg.NewTriple("China", "capital", "Beijing"),
	)
	gg := p.QueryAndPrune(gp, nil)
	if !gg.ContainsSR("China", "population") {
		t.Errorf("chain expansion missing China block:\n%s", gg)
	}
	// Flat pseudo-graph (no chaining): no expansion beyond matched subjects.
	flat := kg.NewGraph(kg.NewTriple("Lake Superior", "area", "82000"))
	ggFlat := p.QueryAndPrune(flat, nil)
	if ggFlat.ContainsSR("China", "population") {
		t.Errorf("flat graph should not expand into China:\n%s", ggFlat)
	}
}

func TestVerifyEmptyGgPassesThrough(t *testing.T) {
	p := newTestPipeline(t, &fakeClient{verify: passthroughVerify})
	gp := kg.NewGraph(kg.NewTriple("a", "r", "x"))
	gf, err := p.Verify(context.Background(), "q?", gp, &kg.Graph{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if gf != gp {
		t.Error("empty Gg should pass Gp through unchanged")
	}
}

func TestVerifyUnparsableFallsBackToGp(t *testing.T) {
	client := &fakeClient{verify: func(prompts.VerifyParts) string { return "total garbage" }}
	p := newTestPipeline(t, client)
	gp := kg.NewGraph(kg.NewTriple("a", "r", "x"))
	gg := kg.NewGraph(kg.NewTriple("b", "r", "y"))
	gf, err := p.Verify(context.Background(), "q?", gp, gg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if gf.Len() != 1 || !gf.Contains(gp.Triples[0]) {
		t.Errorf("fallback Gf = %s", gf)
	}
}

func TestAnswerEndToEnd(t *testing.T) {
	client := &fakeClient{
		pseudo: "```\nCREATE (c:Country {name: 'China'})-[:POPULATION]->(v:Value {name: '9999'})\n```",
		verify: passthroughVerify,
		answer: func(p prompts.GraphQAParts) string {
			g, err := kg.ParseGraph(p.Graph)
			if err != nil || g.Len() == 0 {
				return "{nothing}"
			}
			// Return the last population value in the graph.
			for i := len(g.Triples) - 1; i >= 0; i-- {
				if g.Triples[i].Relation == "population" && g.Triples[i].Subject == "China" {
					return "the population is {" + g.Triples[i].Object + "}"
				}
			}
			return "{missing}"
		},
	}
	p := newTestPipeline(t, client)
	res, err := p.Answer(context.Background(), "What is the population of China?")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Answer, "{1443497378}") {
		t.Errorf("answer = %q", res.Answer)
	}
	tr := res.Trace
	if tr.Gp.Len() == 0 || tr.Gg.Len() == 0 || tr.Gf.Len() == 0 {
		t.Errorf("trace graphs empty: gp=%d gg=%d gf=%d", tr.Gp.Len(), tr.Gg.Len(), tr.Gf.Len())
	}
	if tr.LLMCalls != 3 {
		t.Errorf("LLM calls = %d, want 3", tr.LLMCalls)
	}
}

func TestAnswerRobustToGarbagePseudo(t *testing.T) {
	// The pipeline must not error when the pseudo-graph is garbage: it
	// degrades to an empty-graph answer (parametric fallback) — the
	// robustness property of Table I.
	client := &fakeClient{
		pseudo: "I cannot write Cypher today.",
		verify: passthroughVerify,
		answer: func(p prompts.GraphQAParts) string {
			if strings.TrimSpace(p.Graph) == "" {
				return "fallback {parametric}"
			}
			return "{graph}"
		},
	}
	p := newTestPipeline(t, client)
	res, err := p.Answer(context.Background(), "q?")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Answer, "parametric") {
		t.Errorf("answer = %q", res.Answer)
	}
}

func TestAnswerPropagatesTransportErrors(t *testing.T) {
	p := newTestPipeline(t, &fakeClient{failAll: true})
	if _, err := p.Answer(context.Background(), "q?"); err == nil {
		t.Error("transport error swallowed")
	}
}

func TestAnswerFromGraphNilGraph(t *testing.T) {
	client := &fakeClient{answer: answerEcho}
	p := newTestPipeline(t, client)
	out, err := p.AnswerFromGraph(context.Background(), "q?", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "0 triples") {
		t.Errorf("nil graph answer = %q", out)
	}
}

func TestMaxPseudoTriplesCap(t *testing.T) {
	st, idx := testStore(t)
	cfg := DefaultConfig()
	cfg.MaxPseudoTriples = 2
	p, err := New(&fakeClient{}, st, idx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gp := &kg.Graph{}
	for i := 0; i < 10; i++ {
		gp.Add(kg.NewTriple(fmt.Sprintf("s%d", i), "r", "o"))
	}
	var tr Trace
	p.QueryAndPrune(gp, &tr)
	if len(tr.Gt) > 2*cfg.TopK {
		t.Errorf("Gt = %d hits, cap ignored", len(tr.Gt))
	}
}

func TestCalibrate(t *testing.T) {
	if calibrate(0, 1) != 0 || calibrate(-1, 1) != 0 || calibrate(1, 0) != 0 {
		t.Error("degenerate calibrate inputs")
	}
	if calibrate(0.5, 0.5) != 1 {
		t.Error("self-max should calibrate to 1")
	}
	if c := calibrate(0.35, 0.5); c < 0.69 || c > 0.71 {
		t.Errorf("calibrate(0.35, 0.5) = %v, want 0.7", c)
	}
}

func TestPruneStrategies(t *testing.T) {
	st, idx := testStore(t)
	gp := kg.NewGraph(kg.NewTriple("China", "population", "1400000000"))

	keptOf := func(strat PruneStrategy, threshold float64) []SubjectConfidence {
		cfg := DefaultConfig()
		cfg.Prune = strat
		cfg.ConfidenceThreshold = threshold
		p, err := New(&fakeClient{}, st, idx, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var tr Trace
		p.QueryAndPrune(gp, &tr)
		return tr.Kept
	}

	// With an impossible threshold, two-step keeps nothing while
	// count-only and none ignore the threshold.
	if kept := keptOf(PruneTwoStep, 1.1); len(kept) != 0 {
		t.Errorf("two-step at threshold 1.1 kept %v", kept)
	}
	if kept := keptOf(PruneCountOnly, 1.1); len(kept) == 0 {
		t.Error("count-only should ignore the threshold")
	}
	none := keptOf(PruneNone, 1.1)
	countOnly := keptOf(PruneCountOnly, 1.1)
	if len(none) < len(countOnly) {
		t.Errorf("none (%d) should keep at least as many subjects as count-only (%d)",
			len(none), len(countOnly))
	}
}

func TestPruneStrategyString(t *testing.T) {
	if PruneTwoStep.String() != "two-step" || PruneCountOnly.String() != "count-only" || PruneNone.String() != "none" {
		t.Error("strategy names wrong")
	}
}
