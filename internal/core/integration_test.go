package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/embed"
	"repro/internal/kg"
	"repro/internal/llm"
	"repro/internal/metrics"
	"repro/internal/vecstore"
	"repro/internal/world"
)

// simPipeline wires the pipeline to the real simulated model over a small
// world — the integration layer between the unit tests (fake client) and
// the bench harness.
func simPipeline(t *testing.T, params llm.GradeParams) (*Pipeline, *world.World) {
	t.Helper()
	cfg := world.DefaultConfig()
	cfg.People = 100
	cfg.Cities = 40
	cfg.Countries = 16
	cfg.Works = 60
	cfg.Companies = 24
	cfg.Universities = 12
	cfg.Lakes = 20
	cfg.Mountains = 12
	cfg.Rivers = 20
	w := world.MustGenerate(cfg)
	store := world.WikidataSchema().Render(w)
	idx := vecstore.Build(embed.NewEncoder(), store)
	model := llm.NewSim(w, params, 42)
	p, err := New(model, store, idx, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return p, w
}

// TestPipelineCorrectsHallucinations is the core end-to-end property: over
// head-entity population questions (time-varying, so parametric answers
// are often stale or corrupted), the full pipeline must answer correctly
// far more often than it fails.
func TestPipelineCorrectsHallucinations(t *testing.T) {
	p, w := simPipeline(t, llm.GPT4Params())
	right, total := 0, 0
	for _, cityID := range w.OfKind(world.KindCity)[:25] {
		city := w.Entities[cityID]
		cur, ok := w.CurrentFact(cityID, world.RelPopulation)
		if !ok {
			continue
		}
		total++
		res, err := p.Answer(context.Background(), "What is the population of "+city.Name+"?")
		if err != nil {
			t.Fatal(err)
		}
		if metrics.Hit1(res.Answer, []string{cur.Literal}) > 0 {
			right++
		}
	}
	if right*3 < total*2 {
		t.Errorf("pipeline corrected only %d/%d population questions", right, total)
	}
}

// TestPipelineTraceConsistency: the trace's artefacts must be internally
// consistent on real runs.
func TestPipelineTraceConsistency(t *testing.T) {
	p, w := simPipeline(t, llm.GPT35Params())
	for _, personID := range w.OfKind(world.KindPerson)[:10] {
		name := w.Entities[personID].Name
		res, err := p.Answer(context.Background(), "Where was "+name+" born?")
		if err != nil {
			t.Fatal(err)
		}
		tr := res.Trace
		if tr.Question == "" || tr.PseudoRaw == "" || tr.AnswerRaw == "" {
			t.Fatalf("trace incomplete: %+v", tr)
		}
		if tr.LLMCalls < 2 {
			t.Errorf("expected at least 2 LLM calls, got %d", tr.LLMCalls)
		}
		// Every kept subject must have its block in Gg.
		for _, sc := range tr.Kept {
			if len(tr.Gg.BySubject()[sc.Subject]) == 0 {
				t.Errorf("kept subject %q missing from Gg", sc.Subject)
			}
		}
		if res.Answer != tr.AnswerRaw {
			t.Error("answer and trace diverge")
		}
	}
}

// TestAnswerRefinedWithSimLM: the iterative mode must never do worse than
// the plain pipeline on grounded questions and must report rounds
// consistently.
func TestAnswerRefinedWithSimLM(t *testing.T) {
	p, w := simPipeline(t, llm.GPT4Params())
	for _, lakeID := range w.OfKind(world.KindLake)[:8] {
		name := w.Entities[lakeID].Name
		q := "What is the area of " + name + "?"
		res, err := p.AnswerRefined(context.Background(), q, DefaultRefineConfig())
		if err != nil {
			t.Fatal(err)
		}
		if res.Rounds < 1 || res.Rounds > 2 {
			t.Errorf("rounds = %d", res.Rounds)
		}
		if res.Grounded && res.Trace.Gg.Len() == 0 {
			t.Error("grounded result with empty Gg")
		}
		if !strings.Contains(res.Answer, "{") {
			t.Errorf("unmarked answer: %q", res.Answer)
		}
	}
}

// TestPipelineSchemaAgnostic: the same pipeline construction works over
// the Freebase schema with lower-cased entities.
func TestPipelineSchemaAgnostic(t *testing.T) {
	cfg := world.DefaultConfig()
	cfg.People = 80
	cfg.Cities = 30
	cfg.Countries = 15
	cfg.Works = 50
	cfg.Companies = 20
	cfg.Universities = 10
	cfg.Lakes = 15
	cfg.Mountains = 8
	cfg.Rivers = 15
	w := world.MustGenerate(cfg)
	store := world.FreebaseSchema().Render(w)
	idx := vecstore.Build(embed.NewEncoder(), store)
	model := llm.NewSim(w, llm.GPT4Params(), 42)
	p, err := New(model, store, idx, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	right, total := 0, 0
	for _, cityID := range w.OfKind(world.KindCity)[:15] {
		city := w.Entities[cityID]
		cur, ok := w.CurrentFact(cityID, world.RelPopulation)
		if !ok {
			continue
		}
		total++
		res, err := p.Answer(context.Background(), "What is the population of "+city.Name+"?")
		if err != nil {
			t.Fatal(err)
		}
		if metrics.Hit1(res.Answer, []string{cur.Literal}) > 0 {
			right++
		}
	}
	if right*2 < total {
		t.Errorf("freebase-schema pipeline: %d/%d", right, total)
	}
	if store.Source() != kg.SourceFreebase {
		t.Error("store source should be freebase")
	}
}
