package exec

import (
	"context"
	"errors"
	"testing"
	"time"
)

type state struct {
	in    int
	out   int
	calls int
}

func TestRunRecordsSpansInOrder(t *testing.T) {
	var usageCalls int
	usage := func() (int, int, int) { return usageCalls, usageCalls * 10, usageCalls * 2 }
	st := &state{in: 7}
	spans, err := Run(context.Background(), st, Options{Usage: usage},
		Stage[state]{
			Name: "first",
			Run: func(ctx context.Context, s *state) error {
				usageCalls += 2
				s.out = s.in * 2
				return nil
			},
			InputSize:  func(s *state) int { return s.in },
			OutputSize: func(s *state) int { return s.out },
		},
		Stage[state]{
			Name: "second",
			Run: func(ctx context.Context, s *state) error {
				usageCalls++
				s.out++
				return nil
			},
			OutputSize: func(s *state) int { return s.out },
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Stage != "first" || spans[1].Stage != "second" {
		t.Errorf("span order: %q, %q", spans[0].Stage, spans[1].Stage)
	}
	if spans[0].InputSize != 7 || spans[0].OutputSize != 14 {
		t.Errorf("first sizes = %d/%d, want 7/14", spans[0].InputSize, spans[0].OutputSize)
	}
	if spans[0].LLMCalls != 2 || spans[1].LLMCalls != 1 {
		t.Errorf("per-stage calls = %d/%d, want 2/1", spans[0].LLMCalls, spans[1].LLMCalls)
	}
	if spans[0].PromptTokens != 20 || spans[1].PromptTokens != 10 {
		t.Errorf("per-stage prompt tokens = %d/%d", spans[0].PromptTokens, spans[1].PromptTokens)
	}
	if spans[1].Offset < spans[0].Offset {
		t.Errorf("offsets not monotonic: %v then %v", spans[0].Offset, spans[1].Offset)
	}
	if st.out != 15 {
		t.Errorf("state out = %d, want 15", st.out)
	}
}

func TestRunStopsAtFailingStage(t *testing.T) {
	boom := errors.New("boom")
	st := &state{}
	spans, err := Run(context.Background(), st, Options{},
		Stage[state]{Name: "ok", Run: func(ctx context.Context, s *state) error { return nil }},
		Stage[state]{Name: "fails", Run: func(ctx context.Context, s *state) error { return boom }},
		Stage[state]{Name: "never", Run: func(ctx context.Context, s *state) error {
			t.Error("stage after failure ran")
			return nil
		}},
	)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	var stageErr *StageError
	if !errors.As(err, &stageErr) || stageErr.Stage != "fails" {
		t.Fatalf("want StageError for %q, got %v", "fails", err)
	}
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2 (failing stage included)", len(spans))
	}
	if spans[1].Err != ErrClassUpstream {
		t.Errorf("failing span class = %q, want %q", spans[1].Err, ErrClassUpstream)
	}
}

func TestRunStageTimeout(t *testing.T) {
	st := &state{}
	spans, err := Run(context.Background(), st, Options{DefaultTimeout: 5 * time.Millisecond},
		Stage[state]{Name: "slow", Run: func(ctx context.Context, s *state) error {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(2 * time.Second):
				return nil
			}
		}},
	)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline", err)
	}
	if spans[0].Err != ErrClassDeadline {
		t.Errorf("span class = %q, want deadline", spans[0].Err)
	}
}

// TestRunStageTimeoutOverride checks a stage's own timeout beats the
// default in both directions.
func TestRunStageTimeoutOverride(t *testing.T) {
	st := &state{}
	_, err := Run(context.Background(), st, Options{DefaultTimeout: time.Millisecond},
		Stage[state]{Name: "roomy", Timeout: time.Second, Run: func(ctx context.Context, s *state) error {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(20 * time.Millisecond):
				return nil
			}
		}},
	)
	if err != nil {
		t.Fatalf("stage with its own roomier timeout failed: %v", err)
	}
}

func TestRunCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st := &state{}
	spans, err := Run(ctx, st, Options{},
		Stage[state]{Name: "s", Run: func(ctx context.Context, s *state) error { return ctx.Err() }},
	)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if spans[0].Err != ErrClassCanceled {
		t.Errorf("span class = %q, want canceled", spans[0].Err)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, ""},
		{context.Canceled, ErrClassCanceled},
		{context.DeadlineExceeded, ErrClassDeadline},
		{errors.New("x"), ErrClassUpstream},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}

// TestRunDeadlineBindsNonContextStage: a stage that never consults its
// context still fails its span when it runs past the stage deadline.
func TestRunDeadlineBindsNonContextStage(t *testing.T) {
	st := &state{}
	spans, err := Run(context.Background(), st, Options{DefaultTimeout: 5 * time.Millisecond},
		Stage[state]{Name: "oblivious", Run: func(ctx context.Context, s *state) error {
			time.Sleep(30 * time.Millisecond) // ignores ctx entirely
			return nil
		}},
		Stage[state]{Name: "never", Run: func(ctx context.Context, s *state) error {
			t.Error("stage after a blown deadline ran")
			return nil
		}},
	)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline", err)
	}
	if len(spans) != 1 || spans[0].Err != ErrClassDeadline {
		t.Fatalf("spans = %+v, want one deadline-classed span", spans)
	}
}
