// Package exec is the staged execution engine underneath every QA method:
// a composition of typed Stages run sequentially over a shared state, each
// stage carrying its own deadline, usage accounting and structured trace
// span. The PG&AKV pipeline (internal/core) and every baseline
// (internal/baselines) are compositions of these primitives, so per-stage
// observability — latency, LLM calls, token flow, input/output sizes,
// error class — comes for free in every trace, and any future per-stage
// optimisation (caching one stage, parallelising another, skipping a stage
// under budget pressure) is a local change to one composition.
//
// # Invariants
//
//   - Span ownership: Run returns a fresh []Span the caller owns
//     outright — spans alias nothing inside the engine, and callers that
//     embed them in shared results (answer traces, caches) copy them
//     again (Trace.Clone) before sharing. No two consumers ever hold the
//     same Span backing array.
//   - Partial spans survive errors: a failed run still returns every
//     span recorded up to and including the failing stage, with the
//     failure's class on the last span, so serving layers can attribute
//     the error without re-running anything.
//   - Usage attribution is differential: each span's LLM counters are
//     the delta of the runner's Usage hook across that stage, so stage
//     sums always reconcile with the run's totals.
package exec

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Span is the trace record of one executed stage — the evidence-first
// artefact every run emits, whether it succeeded or not.
type Span struct {
	// Stage is the stage's name within its composition.
	Stage string `json:"stage"`
	// Offset is how far into the run the stage started.
	Offset time.Duration `json:"offset"`
	// Latency is the stage's wall-clock duration.
	Latency time.Duration `json:"latency"`
	// LLMCalls / PromptTokens / CompletionTokens account the LLM usage
	// attributable to this stage (from the runner's Usage hook).
	LLMCalls         int `json:"llm_calls"`
	PromptTokens     int `json:"prompt_tokens"`
	CompletionTokens int `json:"completion_tokens"`
	// InputSize / OutputSize are stage-defined measures of the state before
	// and after the stage ran (triples, hits, characters — the stage picks
	// the unit that makes its work legible).
	InputSize  int `json:"input_size"`
	OutputSize int `json:"output_size"`
	// Err is the stage's error class: "" (ok), "canceled", "deadline" or
	// "upstream".
	Err string `json:"err,omitempty"`
}

// Error classes a Span.Err can hold.
const (
	ErrClassCanceled = "canceled"
	ErrClassDeadline = "deadline"
	ErrClassUpstream = "upstream"
)

// Stage is one unit of a composition: a named piece of work over the
// shared state S, with an optional per-stage deadline and size probes.
type Stage[S any] struct {
	// Name identifies the stage in spans and metrics.
	Name string
	// Timeout bounds this stage's execution; 0 falls back to the runner's
	// DefaultTimeout, and 0 there means unbounded (the caller's context
	// still applies throughout).
	Timeout time.Duration
	// Run does the work. The context carries the stage deadline.
	Run func(ctx context.Context, s *S) error
	// InputSize / OutputSize, when set, measure the state immediately
	// before and after Run for the span.
	InputSize  func(s *S) int
	OutputSize func(s *S) int
}

// UsageFunc snapshots cumulative LLM usage (calls, prompt tokens,
// completion tokens); the runner diffs it around each stage to attribute
// usage per span.
type UsageFunc func() (calls, promptTokens, completionTokens int)

// SpanObserver receives each span as its stage completes — success or
// failure — before the next stage starts. Attach one to the request
// context with WithSpanObserver; streaming front doors (SSE progress on
// /v1/answer) use it to emit per-stage events while the run is still in
// flight. The observer is called synchronously on the run's goroutine
// with a copy of the span, so implementations must be fast or hand off
// to a channel; a slow observer delays the composition itself.
type SpanObserver func(Span)

type observerKey struct{}

// WithSpanObserver attaches a per-stage span observer to the context.
// It composes with any observer already attached (both are called, outer
// last), so middleware layers can observe without clobbering the caller.
func WithSpanObserver(ctx context.Context, fn SpanObserver) context.Context {
	if fn == nil {
		return ctx
	}
	if prev := ObserverFrom(ctx); prev != nil {
		inner := prev
		outer := fn
		fn = func(sp Span) {
			inner(sp)
			outer(sp)
		}
	}
	return context.WithValue(ctx, observerKey{}, fn)
}

// ObserverFrom returns the context's span observer, nil when none.
func ObserverFrom(ctx context.Context) SpanObserver {
	fn, _ := ctx.Value(observerKey{}).(SpanObserver)
	return fn
}

// Options configure one Run.
type Options struct {
	// DefaultTimeout applies to stages that set no Timeout of their own.
	DefaultTimeout time.Duration
	// Usage, when set, attributes LLM usage to spans.
	Usage UsageFunc
}

// StageError wraps a stage failure with the stage's name so callers can
// attribute it; errors.Is/As see through it to the cause.
type StageError struct {
	Stage string
	Err   error
}

func (e *StageError) Error() string { return fmt.Sprintf("stage %q: %v", e.Stage, e.Err) }

// Unwrap exposes the cause.
func (e *StageError) Unwrap() error { return e.Err }

// Run executes the stages in order over the state, recording one span per
// executed stage. On a stage failure it stops and returns the spans so far
// (the failing stage's span included, its Err set) and the error wrapped
// in a *StageError. A stage whose deadline expires fails with
// context.DeadlineExceeded even when the caller's context is still live.
func Run[S any](ctx context.Context, state *S, o Options, stages ...Stage[S]) ([]Span, error) {
	spans := make([]Span, 0, len(stages))
	observe := ObserverFrom(ctx)
	runStart := time.Now()
	for _, st := range stages {
		span := Span{Stage: st.Name, Offset: time.Since(runStart)}
		if st.InputSize != nil {
			span.InputSize = st.InputSize(state)
		}
		var calls0, pt0, ct0 int
		if o.Usage != nil {
			calls0, pt0, ct0 = o.Usage()
		}
		timeout := st.Timeout
		if timeout == 0 {
			timeout = o.DefaultTimeout
		}
		stageCtx, cancel := ctx, context.CancelFunc(func() {})
		if timeout > 0 {
			stageCtx, cancel = context.WithTimeout(ctx, timeout)
		}
		start := time.Now()
		err := st.Run(stageCtx, state)
		if err == nil {
			// A stage that never consults its context (pure-CPU retrieval,
			// aggregation) must still be charged for blowing its deadline:
			// read the context before cancel() — after it, Err() reports
			// Canceled unconditionally.
			err = stageCtx.Err()
		}
		cancel()
		span.Latency = time.Since(start)
		if o.Usage != nil {
			calls1, pt1, ct1 := o.Usage()
			span.LLMCalls = calls1 - calls0
			span.PromptTokens = pt1 - pt0
			span.CompletionTokens = ct1 - ct0
		}
		if st.OutputSize != nil {
			span.OutputSize = st.OutputSize(state)
		}
		if err != nil {
			span.Err = Classify(err)
			spans = append(spans, span)
			if observe != nil {
				observe(span)
			}
			return spans, &StageError{Stage: st.Name, Err: err}
		}
		spans = append(spans, span)
		if observe != nil {
			observe(span)
		}
	}
	return spans, nil
}

// Classer lets an error carry its own span class (e.g. the LLM
// scheduler's budget refusals report "budget") without this package
// knowing every producer.
type Classer interface {
	ErrClass() string
}

// Classify buckets a stage error into its span class.
func Classify(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, context.DeadlineExceeded):
		return ErrClassDeadline
	case errors.Is(err, context.Canceled):
		return ErrClassCanceled
	}
	var classed Classer
	if errors.As(err, &classed) {
		return classed.ErrClass()
	}
	return ErrClassUpstream
}
