// Package core implements the paper's primary contribution: the PG&AKV
// pipeline — Pseudo-Graph Generation followed by Atomic Knowledge
// Verification and answer generation (paper §III, Fig. 1).
//
// The pipeline is faithful to the published algorithm:
//
//	Step 1  Pseudo-Graph Generation: prompt the LLM for a Cypher program,
//	        execute it on the property-graph engine, decode triples → Gp.
//	Step 2  Semantic query: embed each pseudo-triple, retrieve the top-K
//	        most similar KG triples → Gt.
//	Step 3  Two-step pruning: (a) candidate selection — keep the top-k
//	        subjects of Gt by triple count, k = |subjects(Gp)|;
//	        (b) semantic ranking — per-subject confidence = mean cosine of
//	        its Gt triples, drop below the threshold → Gg.
//	Step 4  Pseudo-graph verification: the LLM edits Gp against Gg
//	        (higher-confidence subjects placed closer to Gp) → Gf.
//	Step 5  Answer generation from the question and Gf.
//
// Every step degrades gracefully: a malformed pseudo-graph yields an empty
// Gp and the pipeline falls through to parametric answering — the
// "Robustness" property of the paper's Table I.
package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/core/exec"
	"repro/internal/cypher"
	"repro/internal/embed"
	"repro/internal/kg"
	"repro/internal/llm"
	"repro/internal/prompts"
	"repro/internal/vecstore"
)

// PruneStrategy selects how retrieved subjects are pruned before gold-graph
// assembly (the ablation axis of DESIGN.md §5).
type PruneStrategy int

const (
	// PruneTwoStep is the paper's method: candidate selection by triple
	// count, then confidence filtering.
	PruneTwoStep PruneStrategy = iota
	// PruneCountOnly keeps the top-k subjects by count with no confidence
	// filter (step 1 only).
	PruneCountOnly
	// PruneNone keeps every retrieved subject (bounded only by the
	// MaxSubjects safety cap) — the "rely on the LLM to sort it out"
	// regime the paper argues against.
	PruneNone
)

// String names the strategy.
func (p PruneStrategy) String() string {
	switch p {
	case PruneCountOnly:
		return "count-only"
	case PruneNone:
		return "none"
	default:
		return "two-step"
	}
}

// Config holds the pipeline's tunables with the paper's defaults.
type Config struct {
	// TopK is the per-pseudo-triple retrieval depth (paper: 10).
	TopK int
	// ConfidenceThreshold drops subjects whose mean cosine falls below it
	// (paper: 0.7 with Sentence-BERT; see DESIGN.md on encoder scale).
	ConfidenceThreshold float64
	// MaxSubjectTriples caps each subject's block in the gold graph so the
	// verification context stays within a token budget.
	MaxSubjectTriples int
	// MaxPseudoTriples caps how many pseudo-triples are semantically
	// queried (guards against degenerate generations).
	MaxPseudoTriples int
	// Temperature for all LLM calls (the pipeline is greedy by default).
	Temperature float64
	// Prune selects the pruning strategy (default: the paper's two-step).
	Prune PruneStrategy
	// ShuffleGoldOrder randomises the gold graph's subject order instead
	// of the paper's confidence-descending placement ("subjects with
	// higher entity confidence score are placed closer to Gp"). Ablation
	// knob; leave false for the paper's behaviour.
	ShuffleGoldOrder bool
	// MaxSubjects bounds the kept-subject count under PruneNone (and acts
	// as a safety cap otherwise); 0 means 12.
	MaxSubjects int
	// Memo optionally shares an embedding memo across pipelines (see
	// NewMemo). nil gives each pipeline its own. Callers that rebuild
	// pipelines per request (the answer registry) must share one memo or
	// nothing persists between questions.
	Memo *Memo
	// StageTimeout bounds each pipeline stage individually (0 = only the
	// caller's context applies). A stage that exceeds it fails with a
	// deadline error attributed to that stage in the trace spans.
	StageTimeout time.Duration
	// HedgeBudget enables tail-latency hedging on the semantic-query
	// step: when the primary vecstore search has not returned within the
	// budget, an identical hedge is launched and the first result wins
	// (0 = no hedging).
	HedgeBudget time.Duration
	// HedgeCounters optionally shares hedging counters across pipelines
	// (see NewHedge); nil with hedging enabled gives each pipeline its
	// own. Callers that rebuild pipelines per request (the answer
	// registry) must share one or /v1/metrics sees only the last run.
	HedgeCounters *Hedge
	// Prompts is the versioned prompt registry the pipeline renders from;
	// nil uses the shared embedded defaults (prompts.Default). Each LLM
	// call resolves its view per request, so hot reloads and per-request
	// version overrides (prompts.WithVersions/WithView) take effect
	// without rebuilding the pipeline.
	Prompts *prompts.Registry
}

// DefaultConfig returns the paper's settings.
func DefaultConfig() Config {
	return Config{
		TopK:                10,
		ConfidenceThreshold: 0.70,
		MaxSubjectTriples:   12,
		MaxPseudoTriples:    40,
	}
}

// Pipeline wires an LLM, a KG substrate view and its vector index into the
// PG&AKV flow. Construct with New; safe for concurrent use. Store and
// index are read through their interfaces, so a pipeline can run against a
// plain frozen store or against one immutable snapshot of a live substrate
// (internal/substrate) — either way every step of one run sees the same
// consistent view.
type Pipeline struct {
	client llm.Client
	store  kg.Reader
	index  vecstore.Searcher
	cfg    Config
	// memo caches pseudo-triple embeddings across questions so repeated
	// surfaces (shared anchors, bench reruns) are encoded once per session.
	memo *Memo
}

// New builds a pipeline. The index must have been built over the store
// with the same encoder.
func New(client llm.Client, store kg.Reader, index vecstore.Searcher, cfg Config) (*Pipeline, error) {
	if client == nil {
		return nil, fmt.Errorf("core: nil LLM client")
	}
	if store == nil || index == nil {
		return nil, fmt.Errorf("core: nil store or index")
	}
	if cfg.TopK <= 0 {
		cfg.TopK = 10
	}
	if cfg.MaxSubjectTriples <= 0 {
		cfg.MaxSubjectTriples = 12
	}
	if cfg.MaxPseudoTriples <= 0 {
		cfg.MaxPseudoTriples = 40
	}
	if cfg.MaxSubjects <= 0 {
		cfg.MaxSubjects = 12
	}
	memo := cfg.Memo
	if memo == nil {
		memo = NewMemo(index.Encoder(), 0)
	}
	if cfg.HedgeBudget > 0 {
		if cfg.HedgeCounters == nil {
			cfg.HedgeCounters = NewHedge()
		}
		index = HedgedSearcher(index, cfg.HedgeBudget, cfg.HedgeCounters)
	}
	return &Pipeline{
		client: client,
		store:  store,
		index:  index,
		cfg:    cfg,
		memo:   memo,
	}, nil
}

// Config returns the pipeline's configuration.
func (p *Pipeline) Config() Config { return p.cfg }

// SubjectConfidence is one pruned-subject entry with its score.
type SubjectConfidence struct {
	Subject    string
	Confidence float64
	Triples    int
}

// Trace records every intermediate artefact of one run, for debugging,
// ablations and the example programs.
type Trace struct {
	Question   string
	PseudoRaw  string    // the LLM's full Fig. 3 completion
	PseudoCode string    // extracted Cypher
	PseudoErr  error     // decode failure, if any
	Gp         *kg.Graph // pseudo-graph
	Gt         []vecstore.Hit
	Candidates []SubjectConfidence // after step-1 pruning
	Kept       []SubjectConfidence // after step-2 pruning (ordered)
	Gg         *kg.Graph
	Gf         *kg.Graph
	VerifyRaw  string
	AnswerRaw  string
	LLMCalls   int
	// Stages holds one span per executed stage — latency, LLM usage,
	// input/output sizes and error class, in execution order.
	Stages []exec.Span
}

// Clone returns a deep copy of the trace: the graphs and every slice field
// are duplicated, so a caller mutating the clone (or the original) cannot
// corrupt the other. Serving-layer caches rely on this to hand each caller
// an isolated trace. A nil trace clones to nil.
func (tr *Trace) Clone() *Trace {
	if tr == nil {
		return nil
	}
	out := *tr
	out.Gp = tr.Gp.Clone()
	out.Gg = tr.Gg.Clone()
	out.Gf = tr.Gf.Clone()
	if tr.Gt != nil {
		out.Gt = append([]vecstore.Hit(nil), tr.Gt...)
	}
	if tr.Candidates != nil {
		out.Candidates = append([]SubjectConfidence(nil), tr.Candidates...)
	}
	if tr.Kept != nil {
		out.Kept = append([]SubjectConfidence(nil), tr.Kept...)
	}
	if tr.Stages != nil {
		out.Stages = append([]exec.Span(nil), tr.Stages...)
	}
	return &out
}

// Result is the pipeline's output for one question.
type Result struct {
	Answer string
	Trace  Trace
}

// GeneratePseudoGraph performs step 1: prompt, execute Cypher, decode.
// Failures produce an empty graph, never an error (LLM transport errors
// still propagate).
func (p *Pipeline) GeneratePseudoGraph(ctx context.Context, question string, tr *Trace) (*kg.Graph, error) {
	return p.generatePseudoGraph(ctx, p.client, question, 0, p.cfg.Temperature, tr)
}

// generatePseudoGraph is step 1 over an explicit client (stage runs route
// through a per-run counting client) and sampling nonce: round 0 is greedy
// at the pipeline temperature, later rounds sample at the given
// temperature (the refine loop's retry diversity).
func (p *Pipeline) generatePseudoGraph(ctx context.Context, client llm.Client, question string, nonce int, temperature float64, tr *Trace) (*kg.Graph, error) {
	temp := p.cfg.Temperature
	if nonce > 0 {
		temp = temperature
	}
	resp, err := client.Complete(ctx, llm.Request{
		Prompt:      p.cfg.Prompts.For(ctx).PseudoGraph(question),
		Temperature: temp,
		Nonce:       nonce,
	})
	if err != nil {
		return nil, fmt.Errorf("core: pseudo-graph generation: %w", err)
	}
	if tr != nil {
		tr.PseudoRaw = resp.Text
		tr.LLMCalls++
	}
	code := ExtractCypher(resp.Text)
	if tr != nil {
		tr.PseudoCode = code
	}
	return decodeOrEmpty(code, tr)
}

// decodeOrEmpty decodes a Cypher program into a deduplicated pseudo-graph;
// structural failures yield an empty graph (recorded in the trace), never
// an error.
func decodeOrEmpty(code string, tr *Trace) (*kg.Graph, error) {
	gp, derr := cypher.Decode(code)
	if derr != nil {
		if tr != nil {
			tr.PseudoErr = derr
		}
		return &kg.Graph{}, nil
	}
	return gp.Dedup(), nil
}

// ExtractCypher pulls the Cypher program out of a Fig. 3-style completion:
// the fenced block if present, otherwise every CREATE/MERGE/MATCH line.
func ExtractCypher(completion string) string {
	if i := strings.Index(completion, "```"); i >= 0 {
		rest := completion[i+3:]
		if j := strings.Index(rest, "```"); j >= 0 {
			return strings.TrimSpace(rest[:j])
		}
		return strings.TrimSpace(rest)
	}
	var lines []string
	for _, line := range strings.Split(completion, "\n") {
		t := strings.TrimSpace(line)
		upper := strings.ToUpper(t)
		if strings.HasPrefix(upper, "CREATE") || strings.HasPrefix(upper, "MERGE") || strings.HasPrefix(upper, "MATCH") {
			lines = append(lines, t)
		}
	}
	return strings.Join(lines, "\n")
}

// QueryAndPrune performs steps 2 and 3: semantic query each pseudo-triple,
// then two-step pruning, then assemble the gold graph Gg from the store's
// subject blocks in confidence order.
func (p *Pipeline) QueryAndPrune(gp *kg.Graph, tr *Trace) *kg.Graph {
	if gp.Len() == 0 {
		return &kg.Graph{}
	}
	pseudo := gp.Triples
	if len(pseudo) > p.cfg.MaxPseudoTriples {
		pseudo = pseudo[:p.cfg.MaxPseudoTriples]
	}

	// Step 2: semantic query — top-K per pseudo-triple forms Gt. Queries
	// are encoded through the session memo so repeated pseudo-triples skip
	// the hashing pass.
	queries := make([]string, len(pseudo))
	for i, t := range pseudo {
		queries[i] = t.Text()
	}
	perTriple := p.index.BatchSearchWith(p.memo.Encode, queries, p.cfg.TopK)
	var gt []vecstore.Hit
	for _, hits := range perTriple {
		gt = append(gt, hits...)
	}
	if tr != nil {
		tr.Gt = gt
	}
	if len(gt) == 0 {
		return &kg.Graph{}
	}

	// Step 3a: candidate selection — rank subjects by how many Gt triples
	// they appear in; keep the top k, k = |subjects(Gp)|.
	type agg struct {
		count int
		sum   float64
	}
	bySubject := map[string]*agg{}
	for _, h := range gt {
		a := bySubject[h.Triple.Subject]
		if a == nil {
			a = &agg{}
			bySubject[h.Triple.Subject] = a
		}
		a.count++
		a.sum += h.Score
	}
	subjects := make([]string, 0, len(bySubject))
	for s := range bySubject {
		subjects = append(subjects, s)
	}
	sort.Slice(subjects, func(i, j int) bool {
		a, b := bySubject[subjects[i]], bySubject[subjects[j]]
		if a.count != b.count {
			return a.count > b.count
		}
		if a.sum != b.sum {
			return a.sum > b.sum
		}
		return subjects[i] < subjects[j]
	})
	k := len(gp.Subjects())
	if k < 1 {
		k = 1
	}
	if p.cfg.Prune == PruneNone {
		// Keep everything (safety-capped); step 1 is skipped.
		k = p.cfg.MaxSubjects
	}
	if k > p.cfg.MaxSubjects {
		k = p.cfg.MaxSubjects
	}
	if len(subjects) > k {
		subjects = subjects[:k]
	}
	if tr != nil {
		for _, s := range subjects {
			a := bySubject[s]
			tr.Candidates = append(tr.Candidates, SubjectConfidence{
				Subject: s, Confidence: a.sum / float64(a.count), Triples: a.count,
			})
		}
	}

	// Step 3b: semantic ranking — confidence = mean cosine of the
	// subject's Gt triples; drop below threshold; order by confidence.
	//
	// Calibration: the hashing encoder's absolute cosine scale is lower
	// than Sentence-BERT's and differs between schemas (Freebase path
	// tokens depress same-fact similarity). We therefore read the paper's
	// 0.7 threshold on a *relative* scale: each subject's mean cosine is
	// normalised by the best subject's mean, which is scale- and
	// schema-free while preserving the step's intent (drop weakly
	// supported subjects).
	maxMean := 0.0
	for _, s := range subjects {
		a := bySubject[s]
		if m := a.sum / float64(a.count); m > maxMean {
			maxMean = m
		}
	}
	// A maxMean of 0 means no subject had a positive mean cosine (zero
	// vectors, fully disjoint vocabularies): every confidence calibrates
	// to exactly 0 — never NaN from the 0/0 division, see calibrate — so
	// two-step pruning drops all the unsupported candidates and the
	// pipeline degrades to verifying against an empty gold graph.
	kept := make([]SubjectConfidence, 0, len(subjects))
	for _, s := range subjects {
		a := bySubject[s]
		conf := calibrate(a.sum/float64(a.count), maxMean)
		if p.cfg.Prune == PruneTwoStep && conf < p.cfg.ConfidenceThreshold {
			continue
		}
		kept = append(kept, SubjectConfidence{Subject: s, Confidence: conf, Triples: a.count})
	}
	sort.SliceStable(kept, func(i, j int) bool { return kept[i].Confidence > kept[j].Confidence })
	if p.cfg.ShuffleGoldOrder {
		shuffleSubjects(kept)
	}
	if tr != nil {
		tr.Kept = kept
	}

	// Assemble Gg: full subject blocks from the store (capped), in
	// confidence order — the store's SR ordering keeps time-varying facts
	// chronological within each block — plus a *chain-gated* one-hop
	// expansion. When the pseudo-graph planned a chain (some pseudo
	// triple's object is itself a pseudo subject), the corresponding gold
	// triples' objects are bridging entities, and a few of their own
	// triples are added so the verified first hop ("X born in TrueCity")
	// can chain into the bridge's facts ("TrueCity country ..."). Open
	// questions plan flat star graphs, so no expansion happens and the
	// gold graph stays focused.
	chainRels := chainRelations(gp)
	gg := &kg.Graph{}
	addedSubject := map[string]bool{}
	var expansion []string
	for _, sc := range kept {
		block := p.store.Subject(sc.Subject)
		if len(block) > p.cfg.MaxSubjectTriples {
			block = block[:p.cfg.MaxSubjectTriples]
		}
		gg.Add(block...)
		addedSubject[sc.Subject] = true
		for _, t := range block {
			if p.store.HasSubject(t.Object) && relationInSet(t.Relation, chainRels) {
				expansion = append(expansion, t.Object)
			}
		}
	}
	const expansionCap = 6
	for _, obj := range expansion {
		if addedSubject[obj] {
			continue
		}
		addedSubject[obj] = true
		block := p.store.Subject(obj)
		if len(block) > expansionCap {
			block = block[:expansionCap]
		}
		gg.Add(block...)
	}
	return gg
}

// chainRelations returns the relation surfaces of pseudo-triples whose
// object the pseudo-graph also uses as a subject — the chain hops the LLM
// planned through.
func chainRelations(gp *kg.Graph) []string {
	subjects := map[string]bool{}
	for _, t := range gp.Triples {
		subjects[strings.ToLower(t.Subject)] = true
	}
	var rels []string
	seen := map[string]bool{}
	for _, t := range gp.Triples {
		if subjects[strings.ToLower(t.Object)] && !seen[t.Relation] {
			seen[t.Relation] = true
			rels = append(rels, t.Relation)
		}
	}
	return rels
}

// relationInSet reports whether a KG relation surface shares vocabulary
// with any chain relation (token overlap coefficient >= 0.5).
func relationInSet(relation string, set []string) bool {
	if len(set) == 0 {
		return false
	}
	rt := tokenSet(relation)
	for _, other := range set {
		ot := tokenSet(other)
		small, big := rt, ot
		if len(big) < len(small) {
			small, big = big, small
		}
		if len(small) == 0 {
			continue
		}
		inter := 0
		for tok := range small {
			if big[tok] {
				inter++
			}
		}
		if float64(inter)/float64(len(small)) >= 0.5 {
			return true
		}
	}
	return false
}

// tokenSet returns the distinct tokens of a surface.
func tokenSet(s string) map[string]bool {
	out := map[string]bool{}
	for _, t := range embed.Tokenize(s) {
		out[t] = true
	}
	return out
}

// Verify performs step 4: the LLM edits Gp against Gg. With an empty Gg
// there is nothing to verify against and Gp passes through unchanged.
func (p *Pipeline) Verify(ctx context.Context, question string, gp, gg *kg.Graph, tr *Trace) (*kg.Graph, error) {
	return p.verify(ctx, p.client, question, gp, gg, tr)
}

// verify is step 4 over an explicit client.
func (p *Pipeline) verify(ctx context.Context, client llm.Client, question string, gp, gg *kg.Graph, tr *Trace) (*kg.Graph, error) {
	if gg.Len() == 0 {
		return gp, nil
	}
	goldBlocks := gg.EntityBlocks(gg.Subjects())
	resp, err := client.Complete(ctx, llm.Request{
		Prompt:      p.cfg.Prompts.For(ctx).Verify(question, goldBlocks, gp.String()),
		Temperature: p.cfg.Temperature,
	})
	if err != nil {
		return nil, fmt.Errorf("core: verification: %w", err)
	}
	if tr != nil {
		tr.VerifyRaw = resp.Text
		tr.LLMCalls++
	}
	gf, perr := kg.ParseGraph(resp.Text)
	if perr != nil || gf.Len() == 0 {
		// Unusable verification output: fall back to the pseudo-graph
		// rather than failing the question.
		return gp, nil
	}
	return gf, nil
}

// AnswerFromGraph performs step 5 with an arbitrary reference graph — the
// ablation entry point (w/ Gp vs w/ Gf) as well as the final step of the
// full pipeline.
func (p *Pipeline) AnswerFromGraph(ctx context.Context, question string, graph *kg.Graph, tr *Trace) (string, error) {
	return p.answerFromGraph(ctx, p.client, question, graph, tr)
}

// answerFromGraph is step 5 over an explicit client.
func (p *Pipeline) answerFromGraph(ctx context.Context, client llm.Client, question string, graph *kg.Graph, tr *Trace) (string, error) {
	text := ""
	if graph != nil {
		text = graph.String()
	}
	resp, err := client.Complete(ctx, llm.Request{
		Prompt:      p.cfg.Prompts.For(ctx).AnswerFromGraph(question, text),
		Temperature: p.cfg.Temperature,
	})
	if err != nil {
		return "", fmt.Errorf("core: answer generation: %w", err)
	}
	if tr != nil {
		tr.AnswerRaw = resp.Text
		tr.LLMCalls++
	}
	return resp.Text, nil
}

// shuffleSubjects deterministically permutes the kept subjects (FNV-keyed
// Fisher-Yates) — the ShuffleGoldOrder ablation.
func shuffleSubjects(kept []SubjectConfidence) {
	h := uint64(1469598103934665603)
	for _, sc := range kept {
		for i := 0; i < len(sc.Subject); i++ {
			h ^= uint64(sc.Subject[i])
			h *= 1099511628211
		}
	}
	for i := len(kept) - 1; i > 0; i-- {
		h ^= h >> 33
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
		j := int(h % uint64(i+1))
		kept[i], kept[j] = kept[j], kept[i]
	}
}

// calibrate maps a raw mean cosine into the relative confidence scale the
// paper's 0.7 threshold is applied to (see QueryAndPrune). Degenerate
// inputs — non-positive means or a zero maxMean denominator — calibrate to
// 0 instead of dividing through to NaN/Inf. NaN needs its own check: every
// comparison against NaN is false, so `mean <= 0` alone would let it
// through the guard.
func calibrate(mean, maxMean float64) float64 {
	if math.IsNaN(mean) || math.IsNaN(maxMean) || mean <= 0 || maxMean <= 0 {
		return 0
	}
	c := mean / maxMean
	if c > 1 {
		c = 1
	}
	return c
}

// Encoder returns the encoder used by the pipeline's index (needed by
// callers that must encode queries consistently).
func (p *Pipeline) Encoder() *embed.Encoder { return p.index.Encoder() }

// MemoStats reports the embedding memo's hit/miss counters.
func (p *Pipeline) MemoStats() MemoStats { return p.memo.Stats() }

// HedgeStats reports the hedged-retrieval counters (zeros when hedging
// is off).
func (p *Pipeline) HedgeStats() HedgeStats { return p.cfg.HedgeCounters.Stats() }
