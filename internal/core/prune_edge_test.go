package core

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/core/exec"
	"repro/internal/embed"
	"repro/internal/kg"
	"repro/internal/vecstore"
)

// scriptedSearcher overrides the batch-search path with canned hits while
// delegating everything else to a real (empty) index, so QueryAndPrune can
// be driven through retrieval outcomes the real encoder cannot produce on
// demand (exact zero scores, empty result sets).
type scriptedSearcher struct {
	*vecstore.Index
	hits []vecstore.Hit
}

func (s scriptedSearcher) BatchSearchWith(_ func(string) embed.Vector, queries []string, _ int) [][]vecstore.Hit {
	out := make([][]vecstore.Hit, len(queries))
	for i := range out {
		out[i] = s.hits
	}
	return out
}

func scriptedPipeline(t *testing.T, st *kg.Store, hits []vecstore.Hit, cfg Config) *Pipeline {
	t.Helper()
	idx := scriptedSearcher{Index: vecstore.BuildTriples(embed.NewEncoder(), nil), hits: hits}
	p, err := New(&fakeClient{}, st, idx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestQueryAndPruneEmptyCandidates: retrieval finding nothing yields an
// empty Gg and records an empty Gt, not a panic or phantom subjects.
func TestQueryAndPruneEmptyCandidates(t *testing.T) {
	st, _ := testStore(t)
	p := scriptedPipeline(t, st, nil, DefaultConfig())
	gp := kg.NewGraph(kg.NewTriple("China", "population", "1"))
	var tr Trace
	gg := p.QueryAndPrune(gp, &tr)
	if gg.Len() != 0 {
		t.Errorf("Gg = %s, want empty", gg)
	}
	if len(tr.Gt) != 0 || len(tr.Candidates) != 0 || len(tr.Kept) != 0 {
		t.Errorf("trace populated from empty retrieval: %+v", tr)
	}
}

// TestQueryAndPruneAllBelowThreshold: with a threshold above every
// subject's relative confidence, two-step pruning keeps nothing and Gg is
// empty (the pipeline then verifies against nothing and degrades).
func TestQueryAndPruneAllBelowThreshold(t *testing.T) {
	st, idx := testStore(t)
	cfg := DefaultConfig()
	cfg.ConfidenceThreshold = 1.01 // even the best subject calibrates to 1.0
	p, err := New(&fakeClient{}, st, idx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var tr Trace
	gg := p.QueryAndPrune(kg.NewGraph(kg.NewTriple("China", "population", "1")), &tr)
	if gg.Len() != 0 || len(tr.Kept) != 0 {
		t.Errorf("threshold 1.01 kept %v, Gg:\n%s", tr.Kept, gg)
	}
	if len(tr.Candidates) == 0 {
		t.Error("candidate selection should still have run")
	}
}

// TestQueryAndPruneZeroScoreRegression: when every retrieved cosine is 0
// (zero-vector queries, disjoint vocabularies) the relative confidence
// scale is a 0/0 division. Confidences must come out as exactly 0 — never
// NaN, which would make the threshold comparison silently false and leak
// unsupported subjects into Gg. Under two-step pruning zero-support
// subjects are dropped (Gg empty, graceful degradation); under count-only
// pruning they survive with a finite 0 confidence.
func TestQueryAndPruneZeroScoreRegression(t *testing.T) {
	st, _ := testStore(t)
	zeroHits := []vecstore.Hit{
		{Triple: kg.NewTriple("China", "population", "1443497378"), Score: 0},
		{Triple: kg.NewTriple("Beijing", "country", "China"), Score: 0},
	}
	gp := kg.NewGraph(kg.NewTriple("China", "population", "1"), kg.NewTriple("Beijing", "country", "China"))

	// Two-step: zero support is below any positive threshold; everything
	// is dropped and nothing is NaN.
	p := scriptedPipeline(t, st, zeroHits, DefaultConfig())
	var tr Trace
	gg := p.QueryAndPrune(gp, &tr)
	if len(tr.Kept) != 0 || gg.Len() != 0 {
		t.Errorf("two-step kept zero-support subjects: %v\n%s", tr.Kept, gg)
	}
	for _, sc := range tr.Candidates {
		if math.IsNaN(sc.Confidence) || math.IsInf(sc.Confidence, 0) {
			t.Errorf("candidate %s has non-finite confidence %v", sc.Subject, sc.Confidence)
		}
	}

	// Count-only: the threshold does not apply, and the surviving
	// confidences must be a finite 0 rather than NaN.
	cfg := DefaultConfig()
	cfg.Prune = PruneCountOnly
	pc := scriptedPipeline(t, st, zeroHits, cfg)
	var trc Trace
	ggc := pc.QueryAndPrune(gp, &trc)
	if len(trc.Kept) == 0 || ggc.Len() == 0 {
		t.Fatal("count-only dropped subjects the strategy should keep")
	}
	for _, sc := range trc.Kept {
		if math.IsNaN(sc.Confidence) || sc.Confidence != 0 {
			t.Errorf("subject %s confidence = %v, want finite 0", sc.Subject, sc.Confidence)
		}
	}
}

// TestQueryAndPruneNoneCapInteraction: PruneNone ignores the threshold but
// still honours the MaxSubjects safety cap, keeping the top subjects by
// count.
func TestQueryAndPruneNoneCapInteraction(t *testing.T) {
	st := kg.NewStore(kg.SourceWikidata)
	var hits []vecstore.Hit
	for i := 0; i < 6; i++ {
		subj := fmt.Sprintf("S%d", i)
		st.Add(kg.Triple{Subject: subj, Relation: "r", Object: "o"})
		// Subject S_i appears in i+1 hits, so S5 has the highest count.
		for j := 0; j <= i; j++ {
			hits = append(hits, vecstore.Hit{Triple: kg.NewTriple(subj, "r", "o"), Score: 0.5})
		}
	}
	st.Freeze()
	cfg := DefaultConfig()
	cfg.Prune = PruneNone
	cfg.MaxSubjects = 2
	cfg.ConfidenceThreshold = 1.01 // must be ignored under PruneNone
	p := scriptedPipeline(t, st, hits, cfg)
	var tr Trace
	gg := p.QueryAndPrune(kg.NewGraph(kg.NewTriple("S0", "r", "o")), &tr)
	if len(tr.Kept) != 2 {
		t.Fatalf("PruneNone with MaxSubjects=2 kept %d subjects: %v", len(tr.Kept), tr.Kept)
	}
	for _, sc := range tr.Kept {
		if sc.Subject != "S5" && sc.Subject != "S4" {
			t.Errorf("cap kept %s instead of the top-count subjects", sc.Subject)
		}
	}
	if gg.Len() != 2 {
		t.Errorf("Gg has %d triples, want the 2 capped subject blocks:\n%s", gg.Len(), gg)
	}
}

func TestCalibrateNaNGuard(t *testing.T) {
	nan := math.NaN()
	for _, c := range []float64{calibrate(nan, 1), calibrate(1, nan), calibrate(nan, nan), calibrate(0.5, 0)} {
		if c != 0 {
			t.Errorf("degenerate calibrate input produced %v, want 0", c)
		}
	}
}

func TestTraceClone(t *testing.T) {
	tr := &Trace{
		Question:   "q",
		Gp:         kg.NewGraph(kg.NewTriple("a", "r", "b")),
		Gg:         kg.NewGraph(kg.NewTriple("c", "r", "d")),
		Gf:         kg.NewGraph(kg.NewTriple("e", "r", "f")),
		Gt:         []vecstore.Hit{{Triple: kg.NewTriple("a", "r", "b"), Score: 0.5}},
		Candidates: []SubjectConfidence{{Subject: "cand", Confidence: 0.3}},
		Kept:       []SubjectConfidence{{Subject: "a", Confidence: 1}},
		Stages:     []exec.Span{{Stage: StagePseudo, LLMCalls: 1}},
	}
	cl := tr.Clone()
	cl.Gp.Triples[0].Subject = "CORRUPTED"
	cl.Gt[0].Score = -1
	cl.Candidates[0].Subject = "CORRUPTED"
	cl.Kept[0].Subject = "CORRUPTED"
	cl.Gg.Add(kg.NewTriple("x", "y", "z"))
	cl.Gf.Add(kg.NewTriple("x", "y", "z"))
	cl.Stages[0].LLMCalls = 99
	if tr.Gp.Triples[0].Subject != "a" || tr.Gt[0].Score != 0.5 || tr.Kept[0].Subject != "a" || tr.Gg.Len() != 1 {
		t.Errorf("clone shares state with original: %+v", tr)
	}
	if tr.Candidates[0].Subject != "cand" || tr.Gf.Len() != 1 || tr.Stages[0].LLMCalls != 1 {
		t.Errorf("clone shares state with original: %+v", tr)
	}
	var nilTr *Trace
	if nilTr.Clone() != nil {
		t.Error("nil trace must clone to nil")
	}
}
