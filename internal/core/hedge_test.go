package core

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/embed"
	"repro/internal/kg"
	"repro/internal/vecstore"
)

// stallSearcher is a Searcher whose batch searches block for a
// controllable per-call delay: the first call stalls, later calls are
// instant — the shape that forces a hedge launch and lets the hedge win.
type stallSearcher struct {
	enc   *embed.Encoder
	hits  [][]vecstore.Hit
	calls atomic.Int64
	// firstDelay stalls only the first call; subsequent calls return
	// immediately.
	firstDelay time.Duration
}

func (s *stallSearcher) delay() {
	if s.calls.Add(1) == 1 && s.firstDelay > 0 {
		time.Sleep(s.firstDelay)
	}
}

func (s *stallSearcher) Len() int                { return 1 }
func (s *stallSearcher) Encoder() *embed.Encoder { return s.enc }
func (s *stallSearcher) Search(q string, k int) []vecstore.Hit {
	s.delay()
	return s.hits[0]
}
func (s *stallSearcher) SearchExact(q string, k int) []vecstore.Hit { return s.hits[0] }
func (s *stallSearcher) SearchVector(v embed.Vector, k int) []vecstore.Hit {
	return s.hits[0]
}
func (s *stallSearcher) SearchPreEncoded(q string, v embed.Vector, k int) []vecstore.Hit {
	return s.hits[0]
}
func (s *stallSearcher) BatchSearch(qs []string, k int) [][]vecstore.Hit {
	s.delay()
	return s.hits
}
func (s *stallSearcher) BatchSearchWith(enc func(string) embed.Vector, qs []string, k int) [][]vecstore.Hit {
	s.delay()
	return s.hits
}
func (s *stallSearcher) Stats() vecstore.Stats { return vecstore.Stats{Triples: 1, Shards: 1} }

func newStallSearcher(firstDelay time.Duration) *stallSearcher {
	return &stallSearcher{
		enc:        embed.NewEncoder(),
		firstDelay: firstDelay,
		hits: [][]vecstore.Hit{{
			{Triple: kg.NewTriple("Ada", "born in", "London"), Score: 0.9},
		}},
	}
}

func TestHedgedSearcherFastPrimaryNeverHedges(t *testing.T) {
	inner := newStallSearcher(0)
	h := NewHedge()
	s := HedgedSearcher(inner, time.Second, h)
	out := s.BatchSearchWith(inner.enc.Encode, []string{"Ada born in"}, 3)
	if len(out) != 1 || len(out[0]) != 1 {
		t.Fatalf("unexpected result shape: %v", out)
	}
	st := h.Stats()
	if st.Searches != 1 || st.Hedged != 0 || st.HedgeWins != 0 {
		t.Fatalf("stats = %+v, want searches=1 hedged=0 wins=0", st)
	}
}

func TestHedgedSearcherSlowPrimaryLaunchesWinningHedge(t *testing.T) {
	// Primary stalls for far longer than the budget; the hedge (second
	// call, instant) must win, and the result must be identical to what
	// the primary would have returned.
	inner := newStallSearcher(2 * time.Second)
	h := NewHedge()
	s := HedgedSearcher(inner, 10*time.Millisecond, h)
	start := time.Now()
	out := s.BatchSearchWith(inner.enc.Encode, []string{"Ada born in"}, 3)
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("hedged search took %v — the stalled primary was waited on", elapsed)
	}
	if len(out) != 1 || out[0][0].Triple.Subject != "Ada" {
		t.Fatalf("unexpected result: %v", out)
	}
	st := h.Stats()
	if st.Searches != 1 || st.Hedged != 1 || st.HedgeWins != 1 {
		t.Fatalf("stats = %+v, want searches=1 hedged=1 wins=1", st)
	}
}

func TestHedgedSearcherZeroBudgetIsInner(t *testing.T) {
	inner := newStallSearcher(0)
	if s := HedgedSearcher(inner, 0, nil); s != vecstore.Searcher(inner) {
		t.Fatal("zero budget should return the inner searcher unwrapped")
	}
}

func TestPipelineWiresHedging(t *testing.T) {
	store, idx := testStore(t)
	h := NewHedge()
	cfg := DefaultConfig()
	cfg.HedgeBudget = time.Second
	cfg.HedgeCounters = h
	p, err := New(&fakeClient{}, store, idx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gp := &kg.Graph{}
	gp.Add(kg.NewTriple("China", "capital", "?"))
	p.QueryAndPrune(gp, nil)
	if st := p.HedgeStats(); st.Searches != 1 {
		t.Fatalf("pipeline retrieval did not route through the hedged path: %+v", st)
	}
}
