package core

import (
	"sync/atomic"
	"time"

	"repro/internal/embed"
	"repro/internal/vecstore"
)

// Hedge holds the shared counters of hedged retrieval. One Hedge is
// shared across every pipeline of an environment (like the embedding
// Memo), so /v1/metrics reports tail-latency hedging for the whole
// process. Safe for concurrent use.
type Hedge struct {
	searches atomic.Int64
	hedged   atomic.Int64
	wins     atomic.Int64
}

// NewHedge returns zeroed hedge counters.
func NewHedge() *Hedge { return &Hedge{} }

// HedgeStats is a point-in-time hedging snapshot.
type HedgeStats struct {
	// Searches counts retrieval calls that went through the hedged path.
	Searches int64 `json:"searches"`
	// Hedged counts searches whose primary exceeded the latency budget,
	// causing a hedge launch.
	Hedged int64 `json:"hedged"`
	// HedgeWins counts hedged searches where the hedge finished first.
	HedgeWins int64 `json:"hedge_wins"`
}

// Stats snapshots the counters. Safe on nil (all zeros).
func (h *Hedge) Stats() HedgeStats {
	if h == nil {
		return HedgeStats{}
	}
	return HedgeStats{
		Searches:  h.searches.Load(),
		Hedged:    h.hedged.Load(),
		HedgeWins: h.wins.Load(),
	}
}

// HedgedSearcher wraps a Searcher with tail-latency hedging on the
// pipeline's retrieval paths (Search, BatchSearch, BatchSearchWith): when
// the primary search has not returned within the budget, an identical
// hedge search is launched and the first result wins. Both runs scan the
// same immutable snapshot, so either result is correct; the loser's
// goroutine finishes in the background and is dropped. Hedging converts
// a stalled search — a descheduled thread, a page-cache miss, one slow
// shard — into one extra scan's worth of work instead of a tail-latency
// outlier. Counters accumulate in the shared Hedge.
func HedgedSearcher(inner vecstore.Searcher, budget time.Duration, h *Hedge) vecstore.Searcher {
	if budget <= 0 {
		return inner
	}
	if h == nil {
		h = NewHedge()
	}
	return &hedgedSearcher{inner: inner, budget: budget, stats: h}
}

type hedgedSearcher struct {
	inner  vecstore.Searcher
	budget time.Duration
	stats  *Hedge
}

// hedge runs fn with the hedging policy and returns the first result.
func hedge[T any](s *hedgedSearcher, fn func() T) T {
	s.stats.searches.Add(1)
	primary := make(chan T, 1)
	go func() { primary <- fn() }()
	timer := time.NewTimer(s.budget)
	defer timer.Stop()
	select {
	case out := <-primary:
		return out
	case <-timer.C:
	}
	s.stats.hedged.Add(1)
	secondary := make(chan T, 1)
	go func() { secondary <- fn() }()
	select {
	case out := <-primary:
		return out
	case out := <-secondary:
		s.stats.wins.Add(1)
		return out
	}
}

// Len implements vecstore.Searcher.
func (s *hedgedSearcher) Len() int { return s.inner.Len() }

// Encoder implements vecstore.Searcher.
func (s *hedgedSearcher) Encoder() *embed.Encoder { return s.inner.Encoder() }

// Search implements vecstore.Searcher with hedging.
func (s *hedgedSearcher) Search(query string, k int) []vecstore.Hit {
	return hedge(s, func() []vecstore.Hit { return s.inner.Search(query, k) })
}

// SearchExact implements vecstore.Searcher (un-hedged: the exact scan is
// the correctness reference, not a serving path).
func (s *hedgedSearcher) SearchExact(query string, k int) []vecstore.Hit {
	return s.inner.SearchExact(query, k)
}

// SearchVector implements vecstore.Searcher.
func (s *hedgedSearcher) SearchVector(qv embed.Vector, k int) []vecstore.Hit {
	return s.inner.SearchVector(qv, k)
}

// SearchPreEncoded implements vecstore.Searcher.
func (s *hedgedSearcher) SearchPreEncoded(query string, qv embed.Vector, k int) []vecstore.Hit {
	return s.inner.SearchPreEncoded(query, qv, k)
}

// BatchSearch implements vecstore.Searcher with hedging around the whole
// batch.
func (s *hedgedSearcher) BatchSearch(queries []string, k int) [][]vecstore.Hit {
	return hedge(s, func() [][]vecstore.Hit { return s.inner.BatchSearch(queries, k) })
}

// BatchSearchWith implements vecstore.Searcher with hedging around the
// whole batch — the pipeline's semantic-query path. encode must be safe
// for concurrent use (the Memo is), since primary and hedge may overlap.
func (s *hedgedSearcher) BatchSearchWith(encode func(string) embed.Vector, queries []string, k int) [][]vecstore.Hit {
	return hedge(s, func() [][]vecstore.Hit { return s.inner.BatchSearchWith(encode, queries, k) })
}

// Stats implements vecstore.Searcher.
func (s *hedgedSearcher) Stats() vecstore.Stats { return s.inner.Stats() }
