package core

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/embed"
)

func TestEmbedMemoHitsOnRepeat(t *testing.T) {
	memo := NewMemo(embed.NewEncoder(), 0)
	v1 := memo.Encode("<China> <population> <1443497378>")
	v2 := memo.Encode("<China> <population> <1443497378>")
	if v1 != v2 {
		t.Fatal("memoised vector differs from the original")
	}
	s := memo.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Size != 1 {
		t.Fatalf("stats %+v, want 1 hit / 1 miss / size 1", s)
	}
	// The memoised vector must equal a fresh encode.
	if want := embed.NewEncoder().Encode("<China> <population> <1443497378>"); v1 != want {
		t.Fatal("memoised vector differs from a direct encode")
	}
}

func TestEmbedMemoResetWhenFull(t *testing.T) {
	memo := NewMemo(embed.NewEncoder(), 4)
	for i := 0; i < 10; i++ {
		memo.Encode(fmt.Sprintf("text %d", i))
	}
	s := memo.Stats()
	if s.Resets == 0 {
		t.Fatalf("expected at least one reset, stats %+v", s)
	}
	if s.Size > 4 {
		t.Fatalf("memo exceeded its bound: %+v", s)
	}
}

// TestEmbedMemoConcurrent hammers one memo from 32 goroutines over an
// overlapping text space; run with -race.
func TestEmbedMemoConcurrent(t *testing.T) {
	memo := NewMemo(embed.NewEncoder(), 64)
	reference := embed.NewEncoder()
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				text := fmt.Sprintf("triple surface %d", (g+i)%40)
				if got, want := memo.Encode(text), reference.Encode(text); got != want {
					t.Errorf("memo returned a wrong vector for %q", text)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestPipelineMemoWarmsAcrossQuestions proves the session-level memo: a
// second identical semantic query encodes nothing new.
func TestPipelineMemoWarmsAcrossQuestions(t *testing.T) {
	client := &fakeClient{
		pseudo: "```\nCREATE (c:Country {name: 'China'})-[:POPULATION]->(v:Value {name: '1400000000'})\n```",
	}
	p := newTestPipeline(t, client)
	gp, err := p.GeneratePseudoGraph(context.Background(), "What is the population of China?", nil)
	if err != nil {
		t.Fatal(err)
	}
	if gp.Len() == 0 {
		t.Fatal("expected a pseudo-graph")
	}
	p.QueryAndPrune(gp, nil)
	after1 := p.MemoStats()
	if after1.Misses == 0 {
		t.Fatal("first run should populate the memo")
	}
	p.QueryAndPrune(gp, nil)
	after2 := p.MemoStats()
	if after2.Misses != after1.Misses {
		t.Fatalf("second identical run re-encoded: misses %d -> %d", after1.Misses, after2.Misses)
	}
	if after2.Hits <= after1.Hits {
		t.Fatalf("second identical run should hit the memo: hits %d -> %d", after1.Hits, after2.Hits)
	}
}
