package core

import (
	"context"
	"fmt"

	"repro/internal/kg"
	"repro/internal/llm"
	"repro/internal/prompts"
)

// RefineConfig controls the iterative extension of the pipeline — the
// "dedicated Pseudo-Graph Verification module" direction the paper lists
// as future work. When a round's fixed graph gives the verification no
// gold evidence to work with (Gg came back empty, so Gf is just Gp), the
// refiner re-generates the pseudo-graph at a different sampling nonce and
// tries again: a different phrasing of the knowledge frame often retrieves
// what the first one missed.
type RefineConfig struct {
	// MaxRounds bounds the number of pseudo-graph generations (>= 1).
	MaxRounds int
	// Temperature applies to the retry generations (the first round stays
	// greedy); a little sampling diversity is the point of retrying.
	Temperature float64
}

// DefaultRefineConfig enables one retry round.
func DefaultRefineConfig() RefineConfig {
	return RefineConfig{MaxRounds: 2, Temperature: 0.7}
}

// RefineResult reports the outcome of an iterative run.
type RefineResult struct {
	Result
	// Rounds is how many pseudo-graph generations were used.
	Rounds int
	// Grounded reports whether the final answer was backed by a non-empty
	// gold graph.
	Grounded bool
}

// AnswerRefined runs the pipeline with up to cfg.MaxRounds pseudo-graph
// attempts, keeping the first grounded round. If no round grounds, the
// last round's result is returned (graceful degradation, as in Answer).
func (p *Pipeline) AnswerRefined(ctx context.Context, question string, cfg RefineConfig) (RefineResult, error) {
	if cfg.MaxRounds < 1 {
		cfg.MaxRounds = 1
	}
	var last RefineResult
	for round := 0; round < cfg.MaxRounds; round++ {
		var tr Trace
		tr.Question = question

		gp, err := p.generatePseudoGraphAt(ctx, question, round, cfg.Temperature, &tr)
		if err != nil {
			return RefineResult{}, err
		}
		tr.Gp = gp
		gg := p.QueryAndPrune(gp, &tr)
		tr.Gg = gg
		gf, err := p.Verify(ctx, question, gp, gg, &tr)
		if err != nil {
			return RefineResult{}, err
		}
		tr.Gf = gf
		answer, err := p.AnswerFromGraph(ctx, question, gf, &tr)
		if err != nil {
			return RefineResult{}, err
		}
		last = RefineResult{
			Result:   Result{Answer: answer, Trace: tr},
			Rounds:   round + 1,
			Grounded: gg.Len() > 0,
		}
		if last.Grounded {
			return last, nil
		}
	}
	return last, nil
}

// generatePseudoGraphAt is GeneratePseudoGraph with an explicit sampling
// nonce and temperature: round 0 is greedy (identical to the plain
// pipeline); later rounds sample.
func (p *Pipeline) generatePseudoGraphAt(ctx context.Context, question string, nonce int, temperature float64, tr *Trace) (*kg.Graph, error) {
	temp := p.cfg.Temperature
	if nonce > 0 {
		temp = temperature
	}
	resp, err := p.client.Complete(ctx, llm.Request{
		Prompt:      prompts.PseudoGraph(question),
		Temperature: temp,
		Nonce:       nonce,
	})
	if err != nil {
		return nil, fmt.Errorf("core: pseudo-graph generation (round %d): %w", nonce, err)
	}
	if tr != nil {
		tr.PseudoRaw = resp.Text
		tr.LLMCalls++
	}
	code := ExtractCypher(resp.Text)
	if tr != nil {
		tr.PseudoCode = code
	}
	gp, derr := decodeOrEmpty(code, tr)
	if derr != nil {
		return nil, derr
	}
	return gp, nil
}
