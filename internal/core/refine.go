package core

import (
	"context"
)

// RefineConfig controls the iterative extension of the pipeline — the
// "dedicated Pseudo-Graph Verification module" direction the paper lists
// as future work. When a round's fixed graph gives the verification no
// gold evidence to work with (Gg came back empty, so Gf is just Gp), the
// refiner re-generates the pseudo-graph at a different sampling nonce and
// tries again: a different phrasing of the knowledge frame often retrieves
// what the first one missed.
type RefineConfig struct {
	// MaxRounds bounds the number of pseudo-graph generations (>= 1).
	MaxRounds int
	// Temperature applies to the retry generations (the first round stays
	// greedy); a little sampling diversity is the point of retrying.
	Temperature float64
}

// DefaultRefineConfig enables one retry round.
func DefaultRefineConfig() RefineConfig {
	return RefineConfig{MaxRounds: 2, Temperature: 0.7}
}

// RefineResult reports the outcome of an iterative run.
type RefineResult struct {
	Result
	// Rounds is how many pseudo-graph generations were used.
	Rounds int
	// Grounded reports whether the final answer was backed by a non-empty
	// gold graph.
	Grounded bool
}

// AnswerRefined runs the pipeline with up to cfg.MaxRounds pseudo-graph
// attempts, keeping the first grounded round. If no round grounds, the
// last round's result is returned (graceful degradation, as in Answer).
// Every round is the same stage composition Answer uses, at a per-round
// sampling nonce, so each round's trace carries its own stage spans.
func (p *Pipeline) AnswerRefined(ctx context.Context, question string, cfg RefineConfig) (RefineResult, error) {
	if cfg.MaxRounds < 1 {
		cfg.MaxRounds = 1
	}
	var last RefineResult
	for round := 0; round < cfg.MaxRounds; round++ {
		res, err := p.run(ctx, question, round, cfg.Temperature,
			p.stagePseudo(), p.stageRetrievePrune(), p.stageVerify(), p.stageAnswerFinal())
		if err != nil {
			// Keep the failed round's partial trace (spans up to the
			// failing stage), matching every other entry point.
			return RefineResult{Result: res, Rounds: round + 1}, err
		}
		last = RefineResult{
			Result:   res,
			Rounds:   round + 1,
			Grounded: res.Trace.Gg.Len() > 0,
		}
		if last.Grounded {
			return last, nil
		}
	}
	return last, nil
}
