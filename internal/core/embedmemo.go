package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/embed"
)

// Memo caches query-text embeddings across questions.
// Pseudo-graphs repeat triples across questions (the LLM plans the same
// anchor facts again and again) and every bench rerun re-encodes an
// identical query set, so memoising the encoder removes the hashing pass
// from the hot path after first sight.
//
// The memo is bounded: when full, the whole map is reset rather than
// tracking recency — encoding is cheap enough that an occasional cold
// restart beats per-hit bookkeeping, and the reset keeps memory flat for
// long-lived serving processes.
type Memo struct {
	enc *embed.Encoder
	max int

	mu sync.RWMutex
	m  map[string]embed.Vector

	hits   atomic.Int64
	misses atomic.Int64
	resets atomic.Int64
}

// defaultEmbedMemoSize bounds the per-pipeline memo. At Dim float32s per
// vector this is ~8 MB fully loaded.
const defaultEmbedMemoSize = 8192

// NewMemo wraps an encoder; max <= 0 uses the default bound. Pass the
// result through Config.Memo to share one memo across pipelines built
// over the same encoder (different KG sources included — the mapping is
// text -> vector, independent of any store).
func NewMemo(enc *embed.Encoder, max int) *Memo {
	if max <= 0 {
		max = defaultEmbedMemoSize
	}
	return &Memo{enc: enc, max: max, m: make(map[string]embed.Vector)}
}

// Encode returns the embedding of text, computing it at most once per
// memo generation.
func (em *Memo) Encode(text string) embed.Vector {
	em.mu.RLock()
	v, ok := em.m[text]
	em.mu.RUnlock()
	if ok {
		em.hits.Add(1)
		return v
	}
	em.misses.Add(1)
	v = em.enc.Encode(text)
	em.mu.Lock()
	if len(em.m) >= em.max {
		em.m = make(map[string]embed.Vector)
		em.resets.Add(1)
	}
	em.m[text] = v
	em.mu.Unlock()
	return v
}

// MemoStats reports the embedding memo's effectiveness.
type MemoStats struct {
	Size   int   `json:"size"`
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Resets int64 `json:"resets"`
}

// Stats snapshots the counters.
func (em *Memo) Stats() MemoStats {
	em.mu.RLock()
	size := len(em.m)
	em.mu.RUnlock()
	return MemoStats{
		Size:   size,
		Hits:   em.hits.Load(),
		Misses: em.misses.Load(),
		Resets: em.resets.Load(),
	}
}
