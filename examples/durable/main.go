// Durable substrate: wire a persistent substrate.Manager from library
// code — WAL + checkpoint under a data directory — ingest facts, crash
// (simulated by dropping the manager without Close), and recover them
// on the next boot with a non-regressed epoch.
//
//	go run ./examples/durable
//
// See docs/operations.md for the serving-layer equivalent (pgakvd's
// -data-dir / -fsync / -checkpoint-interval flags).
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/embed"
	"repro/internal/kg"
	"repro/internal/substrate"
	"repro/internal/world"
)

func main() {
	dir := filepath.Join(os.TempDir(), "pgakv-durable-example")
	if err := os.RemoveAll(dir); err != nil {
		log.Fatal(err)
	}

	// The seed base: a deterministic rendered world, exactly what a boot
	// with no persisted state serves. Recover only uses it when the data
	// directory holds no checkpoint.
	seed := func() *kg.Store {
		cfg := world.DefaultConfig()
		cfg.People, cfg.Cities, cfg.Countries = 80, 30, 10
		cfg.Works, cfg.Companies, cfg.Universities = 50, 20, 12
		w, err := world.Generate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return world.WikidataSchema().Render(w)
	}
	cfg := substrate.Config{
		ShardSize: 1024,
		Durability: substrate.Durability{
			Dir:   dir,
			Fsync: substrate.SyncAlways, // every acknowledged ingest survives kill -9
		},
	}
	enc := embed.NewEncoder()

	// Boot 1: fresh directory, so the manager starts from the seed.
	m1, err := substrate.Recover(enc, seed(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("boot 1: epoch %d, %d triples\n", m1.Epoch(), m1.Current().Store.Len())

	facts := []kg.Triple{
		{Subject: "Zorblax", Relation: "prime directive", Object: "Flumox42"},
		{Subject: "Zorblax", Relation: "homeworld", Object: "Kepler-42b"},
	}
	res, err := m1.Ingest(facts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %d facts, epoch now %d\n", res.Added, res.Epoch)

	// Optional: persist a checkpoint explicitly (compaction and the
	// CheckpointInterval timer do this automatically in a server).
	info, err := m1.Checkpoint(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint at epoch %d: %d triples -> %s\n", info.Epoch, info.Triples, info.Path)

	// One more ingest AFTER the checkpoint: recovery must replay it from
	// the WAL tail.
	if _, err := m1.Ingest([]kg.Triple{
		{Subject: "Zorblax", Relation: "ambassador", Object: "Trelane"},
	}); err != nil {
		log.Fatal(err)
	}
	crashEpoch := m1.Epoch()
	fmt.Printf("crashing at epoch %d (no Close — the WAL already has everything)\n", crashEpoch)

	// Boot 2: same directory, same seed. Recovery = newest checkpoint +
	// WAL tail replay.
	m2, err := substrate.Recover(enc, seed(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer m2.Close()
	rec := m2.Recovery()
	fmt.Printf("boot 2: epoch %d (>= %d), recovered checkpoint epoch %d (%d triples), replayed %d wal record(s)\n",
		m2.Epoch(), crashEpoch, rec.CheckpointEpoch, rec.CheckpointTriples, rec.ReplayedRecords)

	snap := m2.Current()
	for _, f := range append(facts, kg.Triple{Subject: "Zorblax", Relation: "ambassador", Object: "Trelane"}) {
		if !snap.Store.Contains(f) {
			log.Fatalf("recovered substrate lost %v", f)
		}
	}
	fmt.Println("\nall ingested facts survived; semantic search over the recovered index:")
	for _, hit := range snap.Index.Search("Zorblax prime directive", 3) {
		fmt.Printf("  %.3f  %s\n", hit.Score, hit.Triple)
	}
}
