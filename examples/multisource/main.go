// Multi-source generalisation: the same questions answered against the
// Wikidata-flavoured and Freebase-flavoured KGs (same facts, different
// schemas) — the paper's Table III. The pseudo-triples are always written
// in the model's own vocabulary; the atomic semantic query is what bridges
// the schema gap.
//
//	go run ./examples/multisource
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/kg"
	"repro/internal/metrics"
)

func main() {
	env, err := bench.NewEnv(bench.QuickEnvConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Show the same fact rendered in both schemas.
	person := env.World.Entities[env.World.OfKind(0)[0]] // KindPerson == 0
	fmt.Println("one fact, two schemas:")
	for _, src := range []kg.Source{kg.SourceWikidata, kg.SourceFreebase} {
		st := env.Stores[src]
		if canonical, ok := st.FindSubjectFold(person.Name); ok {
			for _, tr := range st.Subject(canonical)[:1] {
				fmt.Printf("  %-9s %s\n", src.String()+":", tr)
			}
		}
	}
	fmt.Println()

	questions := env.Suite.Simple.Questions[:8]
	for _, src := range []kg.Source{kg.SourceFreebase, kg.SourceWikidata} {
		pipeline, err := env.Pipeline(bench.ModelGPT35, src)
		if err != nil {
			log.Fatal(err)
		}
		right := 0
		for _, q := range questions {
			res, err := pipeline.Answer(context.Background(), q.Text)
			if err != nil {
				log.Fatal(err)
			}
			if metrics.Hit1(res.Answer, q.Golds) > 0 {
				right++
			}
		}
		fmt.Printf("PG&AKV over %-9s KG: %d/%d SimpleQuestions correct\n",
			src, right, len(questions))
	}
	fmt.Println("\n(The questions are Freebase-sourced; the method still works against")
	fmt.Println(" the Wikidata schema because querying and verification are atomic.)")
}
