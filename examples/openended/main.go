// Open-ended QA: the paper's motivating scenario. Compares CoT, RAG and
// PG&AKV on "who is a leading figure in field X" questions, scoring each
// answer with ROUGE-L against the dataset references — the Nature
// Questions setting of Table II's last column.
//
//	go run ./examples/openended
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/baselines"
	"repro/internal/bench"
	"repro/internal/metrics"
)

func main() {
	env, err := bench.NewEnv(bench.QuickEnvConfig())
	if err != nil {
		log.Fatal(err)
	}
	model := env.Models[bench.ModelGPT35]
	src := bench.DefaultSource("NatureQuestions")
	pipeline, err := env.Pipeline(bench.ModelGPT35, src)
	if err != nil {
		log.Fatal(err)
	}

	var cotTotal, ragTotal, oursTotal float64
	n := 5
	for _, q := range env.Suite.Nature.Questions[:n] {
		fmt.Println("Q:", q.Text)

		cot, err := baselines.CoT(context.Background(), model, q.Text)
		if err != nil {
			log.Fatal(err)
		}
		rag, err := baselines.RAG(context.Background(), model, env.Indexes[src], q.Text, baselines.DefaultRAGConfig())
		if err != nil {
			log.Fatal(err)
		}
		res, err := pipeline.Answer(context.Background(), q.Text)
		if err != nil {
			log.Fatal(err)
		}

		cotScore := metrics.RougeLMulti(cot, q.Refs)
		ragScore := metrics.RougeLMulti(rag, q.Refs)
		oursScore := metrics.RougeLMulti(res.Answer, q.Refs)
		cotTotal += cotScore
		ragTotal += ragScore
		oursTotal += oursScore

		fmt.Printf("  CoT    ROUGE-L %.3f  | %.90s...\n", cotScore, cot)
		fmt.Printf("  RAG    ROUGE-L %.3f  | %.90s...\n", ragScore, rag)
		fmt.Printf("  PG&AKV ROUGE-L %.3f  | %.90s...\n", oursScore, res.Answer)
		fmt.Printf("  (pseudo-graph had %d triples; %d subjects survived pruning)\n\n",
			res.Trace.Gp.Len(), len(res.Trace.Kept))
	}
	fmt.Printf("mean over %d questions:  CoT %.3f   RAG %.3f   PG&AKV %.3f\n",
		n, cotTotal/float64(n), ragTotal/float64(n), oursTotal/float64(n))
}
