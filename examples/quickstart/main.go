// Quickstart: wire up the PG&AKV pipeline from its parts — world, KG
// store, vector index, simulated LLM — and answer one question, printing
// every intermediate artefact (Gp, pruned subjects, Gg, Gf, answer).
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/llm"
	"repro/internal/vecstore"
	"repro/internal/world"
)

func main() {
	// 1. Generate a synthetic world (the Wikidata/Freebase substitute).
	cfg := world.DefaultConfig()
	cfg.People, cfg.Cities, cfg.Countries = 150, 60, 20
	cfg.Works, cfg.Companies, cfg.Universities = 100, 40, 25
	w, err := world.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(w.Stats())

	// 2. Render it as a Wikidata-flavoured KG and build the vector index.
	store := world.WikidataSchema().Render(w)
	index := vecstore.Build(embed.NewEncoder(), store)
	fmt.Println(store.Stats())

	// 3. A simulated GPT-3.5-grade model whose memory is a corrupted
	//    snapshot of the same world.
	model := llm.NewSim(w, llm.GPT35Params(), 42)

	// 4. The PG&AKV pipeline with the paper's settings.
	pipeline, err := core.New(model, store, index, core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// 5. Ask about a real entity — population is time-varying, so the
	//    verification step must pick the latest value.
	city := w.Entities[w.OfKind(world.KindCity)[3]]
	question := fmt.Sprintf("What is the population of %s?", city.Name)
	res, err := pipeline.Answer(context.Background(), question)
	if err != nil {
		log.Fatal(err)
	}

	tr := res.Trace
	fmt.Println("\nQ:", question)
	fmt.Println("\npseudo-graph Gp (the model's possibly-hallucinated plan):")
	fmt.Println(tr.Gp)
	fmt.Println("\nsubjects kept by two-step pruning:")
	for _, sc := range tr.Kept {
		fmt.Printf("  %-30s confidence %.3f (%d retrieved triples)\n",
			sc.Subject, sc.Confidence, sc.Triples)
	}
	fmt.Println("\ngold graph Gg (KG evidence):")
	fmt.Println(tr.Gg)
	fmt.Println("\nfixed graph Gf (after LLM verification):")
	fmt.Println(tr.Gf)
	fmt.Println("\nanswer:", res.Answer)

	// Ground truth for comparison.
	cur, _ := w.CurrentFact(city.ID, world.RelPopulation)
	fmt.Println("ground truth:", cur.Literal)
}
