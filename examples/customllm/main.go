// Custom LLM client: the pipeline only speaks prompt text through the
// llm.Client interface, so any backend can drive it. This example wires a
// hand-scripted client (llm.Scripted) into core.Pipeline — the same
// mechanism you would use to replay transcripts from a real GPT endpoint —
// and wraps it in llm.Recorder to show the full prompt/completion
// transcript of one run.
//
//	go run ./examples/customllm
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/kg"
	"repro/internal/llm"
	"repro/internal/prompts"
	"repro/internal/vecstore"
)

func main() {
	// A hand-built KG: the paper's Great Lakes example.
	store := kg.NewStore(kg.SourceWikidata)
	store.AddAll([]kg.Triple{
		{Subject: "Lake Superior", Relation: "area", Object: "82350"},
		{Subject: "Lake Superior", Relation: "connects with", Object: "Keweenaw Waterway"},
		{Subject: "Lake Michigan", Relation: "area", Object: "57750"},
		{Subject: "Lake Huron", Relation: "area", Object: "59600"},
		{Subject: "Lake Ontario", Relation: "area", Object: "18529"},
		{Subject: "Lake Erie", Relation: "area", Object: "25700"},
	})
	store.Freeze()
	index := vecstore.Build(embed.NewEncoder(), store)

	// A scripted client playing the LLM's three roles. The pseudo-graph
	// hallucinates areas (82000, 58000, 23000 — the paper's Fig. 3 values);
	// the verifier trusts the gold graph; the answerer picks the max.
	scripted := llm.NewScripted().
		On(prompts.TaskPseudoGraph, "<step 2> {Knowledge Graph}:\n```\n"+
			"CREATE (superior:Lake {name: 'Lake Superior', area: 82000})\n"+
			"CREATE (michigan:Lake {name: 'Lake Michigan', area: 58000})\n"+
			"CREATE (huron:Lake {name: 'Lake Huron', area: 23000})\n"+
			"```").
		OnFunc(prompts.TaskVerify, func(prompt string) (string, error) {
			parts, err := prompts.ExtractVerifyParts(prompt)
			if err != nil {
				return "", err
			}
			gold, err := kg.ParseGraph(parts.GoldGraph)
			if err != nil {
				return "", err
			}
			return gold.String(), nil // trust the KG wholesale
		}).
		OnFunc(prompts.TaskGraphQA, func(prompt string) (string, error) {
			parts, err := prompts.ExtractGraphQAParts(prompt)
			if err != nil {
				return "", err
			}
			g, err := kg.ParseGraph(parts.Graph)
			if err != nil || g.Len() == 0 {
				return "I do not know {anything}.", nil
			}
			best, bestArea := "", ""
			for _, t := range g.Triples {
				if t.Relation == "area" && t.Object > bestArea {
					// String compare works here: all areas are 5-digit.
					best, bestArea = t.Subject, t.Object
				}
			}
			return fmt.Sprintf("Based on the [graph] above, the largest is {%s} with area %s.", best, bestArea), nil
		})

	recorder := llm.NewRecorder(scripted)
	pipeline, err := core.New(recorder, store, index, core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	res, err := pipeline.Answer(context.Background(), "Who has the largest area of the Great Lakes in the United States?")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("answer:", res.Answer)
	fmt.Println("\nGf (hallucinated areas corrected against the KG):")
	fmt.Println(res.Trace.Gf)

	fmt.Println("\ntranscript:")
	for i, ex := range recorder.Exchanges() {
		fmt.Printf("  call %d: task=%-12s prompt=%4d tokens, completion=%3d tokens\n",
			i+1, ex.Task, ex.Response.Usage.PromptTokens, ex.Response.Usage.CompletionTokens)
	}
}
