// Ablation: answer the same questions with (a) no graph (CoT), (b) the raw
// pseudo-graph Gp, and (c) the verified graph Gf — the conditions of the
// paper's Tables IV and V. Shows concretely how verification turns a
// hallucinated value into the KG's current one.
//
//	go run ./examples/ablation
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/baselines"
	"repro/internal/bench"
	"repro/internal/metrics"
)

func main() {
	env, err := bench.NewEnv(bench.QuickEnvConfig())
	if err != nil {
		log.Fatal(err)
	}
	model := env.Models[bench.ModelGPT4]
	src := bench.DefaultSource("QALD")
	pipeline, err := env.Pipeline(bench.ModelGPT4, src)
	if err != nil {
		log.Fatal(err)
	}

	questions := env.Suite.QALD.Questions[:10]
	var cotRight, gpRight, gfRight int
	for _, q := range questions {
		cot, err := baselines.CoT(context.Background(), model, q.Text)
		if err != nil {
			log.Fatal(err)
		}
		gp, err := pipeline.GeneratePseudoGraph(context.Background(), q.Text, nil)
		if err != nil {
			log.Fatal(err)
		}
		gpAnswer, err := pipeline.AnswerFromGraph(context.Background(), q.Text, gp, nil)
		if err != nil {
			log.Fatal(err)
		}
		full, err := pipeline.Answer(context.Background(), q.Text)
		if err != nil {
			log.Fatal(err)
		}

		c := metrics.Hit1(cot, q.Golds)
		g := metrics.Hit1(gpAnswer, q.Golds)
		f := metrics.Hit1(full.Answer, q.Golds)
		cotRight += int(c)
		gpRight += int(g)
		gfRight += int(f)
		fmt.Printf("Q: %s\n  CoT %v | w/Gp %v | w/Gf %v   (gold: %v)\n",
			q.Text, c == 1, g == 1, f == 1, q.Golds[0])
		// Show one corrected hallucination in detail.
		if f == 1 && g == 0 && full.Trace.Gp.Len() > 0 {
			fmt.Printf("    Gp said: %s\n    Gf said: %s\n",
				full.Trace.Gp.Triples[0], full.Trace.Gf.Triples[0])
		}
	}
	n := len(questions)
	fmt.Printf("\ntotals over %d QALD questions:  CoT %d | w/Gp %d | w/Gf %d\n",
		n, cotRight, gpRight, gfRight)
	fmt.Println("(Gf — the verified graph — should lead, per Tables IV/V.)")
}
